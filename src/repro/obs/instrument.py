"""The :class:`Instrumentation` facade threaded through the checkers.

One object per run bundles the three observability backends -- event
bus, metrics registry, phase profiler -- behind small hook methods the
instrumented layers call.  The contract with the hot path:

* uninstrumented runs pass ``obs=None`` everywhere, and every hook
  site guards with ``if obs is not None`` -- a single attribute test,
  no allocation, no call;
* with instrumentation on but no sinks subscribed, hooks update the
  metrics dicts and never construct an event (``bus.active`` is
  checked before allocating);
* full phase timing (two clock reads per hooked call) only happens
  with ``profiling=True``.

The per-bound breakdowns maintained here mirror ``SearchContext``
exactly: ``states_by_bound`` tracks each state's *minimal* reaching
preemption count, including the re-bucketing when a later visit
reaches a known state with fewer preemptions, so a snapshot's counts
can be asserted equal to the context's (the acceptance check in
``tests/obs``).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

from .events import (
    AnalysisCompleted,
    BoundCompleted,
    BoundStarted,
    BugFound,
    CachePushSent,
    CacheSyncApplied,
    CheckpointResumed,
    CheckpointSaved,
    EventBus,
    HttpRequestServed,
    LeaseRenewed,
    LeaseTakeover,
    ExecutionFinished,
    ExecutionStarted,
    InvivoRun,
    RaceChecked,
    ResultCacheServed,
    SearchFinished,
    SearchStarted,
    StateVisited,
    WorkerHeartbeat,
)
from .metrics import MetricsRegistry, MetricsSnapshot, SampledTimer
from .profile import Profiler

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..analysis import ProgramAnalysis
    from ..errors import BugReport


class _PhaseHook:
    """One instrumented call site: optional exact phase timing plus an
    optional sampled latency histogram.

    ``start`` returns 0.0 when this call is not being timed, making
    the common case one increment and one modulo."""

    __slots__ = ("phase", "timer", "profiler")

    def __init__(
        self,
        phase: str,
        timer: Optional[SampledTimer],
        profiler: Optional[Profiler],
    ) -> None:
        self.phase = phase
        self.timer = timer
        self.profiler = profiler

    def start(self) -> float:
        if self.profiler is not None:
            return time.perf_counter()
        if self.timer is not None:
            return self.timer.start()
        return 0.0

    def stop(self, t0: float) -> None:
        if not t0:
            return
        elapsed = time.perf_counter() - t0
        if self.profiler is not None:
            self.profiler.add(self.phase, elapsed)
        if self.timer is not None:
            # Under profiling every call is timed anyway, so the
            # histogram upgrades from sampled to exhaustive.
            self.timer.hist.record(elapsed)


class Instrumentation:
    """Event bus + metrics + profiler for one search run."""

    def __init__(
        self,
        bus: Optional[EventBus] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiling: bool = False,
        sample_stride: int = 64,
    ) -> None:
        self.bus = bus or EventBus()
        self.metrics = metrics or MetricsRegistry()
        self.profiling = profiling
        self.profile = Profiler()
        #: The strategy's current iteration bound (ICB preemption
        #: bound, IDDFS depth); keys ``executions_by_bound``.
        self.current_bound = 0
        self._t0 = time.perf_counter()
        self._in_execution = False
        profiler = self.profile if profiling else None
        registry = self.metrics
        self.hook_schedule = _PhaseHook("schedule", None, profiler)
        self.hook_execute = _PhaseHook(
            "execute", registry.timer("execute_latency", sample_stride), profiler
        )
        self.hook_fingerprint = _PhaseHook(
            "fingerprint",
            registry.timer("fingerprint_latency", sample_stride),
            profiler,
        )
        self.hook_race = _PhaseHook(
            "race-detect", registry.timer("race_check_latency", sample_stride), profiler
        )
        self.hook_cache = _PhaseHook("cache-lookup", None, profiler)
        self.hook_analysis = _PhaseHook("analysis", None, profiler)

    def now(self) -> float:
        """Seconds since this instrumentation was armed."""
        return time.perf_counter() - self._t0

    # -- run lifecycle -----------------------------------------------------

    def search_started(self, strategy: str, program: str) -> None:
        self.metrics.add("searches")
        if self.bus.active:
            self.bus.emit(SearchStarted(self.now(), strategy, program))

    def search_finished(
        self,
        strategy: str,
        completed: bool,
        stop_reason: str,
        executions: int,
        transitions: int,
        states: int,
        bugs: int,
    ) -> None:
        self._in_execution = False
        if self.bus.active:
            self.bus.emit(
                SearchFinished(
                    self.now(),
                    strategy,
                    completed,
                    stop_reason,
                    executions,
                    transitions,
                    states,
                    bugs,
                )
            )

    def bound_started(self, bound: int, frontier: int) -> None:
        self.current_bound = bound
        self.metrics.set_gauge("current_bound", float(bound))
        if self.bus.active:
            self.bus.emit(BoundStarted(self.now(), bound, frontier))

    def bound_completed(self, bound: int, executions: int, states: int) -> None:
        self.metrics.set_gauge("completed_bound", float(bound))
        if self.bus.active:
            self.bus.emit(BoundCompleted(self.now(), bound, executions, states))

    # -- hot-path hooks (called by SearchContext) --------------------------

    def transition_observed(
        self, preemptions: int, prior: Optional[int], states: int
    ) -> None:
        """One ``visit``: ``prior`` is the state's previously recorded
        minimal preemption bucket (``None`` for a new state)."""
        registry = self.metrics
        registry.counters["transitions"] = registry.counters.get("transitions", 0) + 1
        if not self._in_execution:
            self._in_execution = True
            if self.bus.active:
                self.bus.emit(
                    ExecutionStarted(
                        self.now(), registry.counters.get("executions", 0) + 1
                    )
                )
        if prior is None:
            self.state_discovered(preemptions, states)
        elif preemptions < prior:
            # Known state reached more cheaply: move it to the lower
            # bucket, exactly as SearchContext.states does.
            buckets = registry.states_by_bound
            buckets[prior] -= 1
            buckets[preemptions] = buckets.get(preemptions, 0) + 1

    def state_discovered(self, preemptions: int, states: int) -> None:
        registry = self.metrics
        registry.counters["distinct_states"] = (
            registry.counters.get("distinct_states", 0) + 1
        )
        buckets = registry.states_by_bound
        buckets[preemptions] = buckets.get(preemptions, 0) + 1
        if self.bus.active:
            self.bus.emit(StateVisited(self.now(), states, preemptions))

    def execution_finished(self, index: int, states: int) -> None:
        registry = self.metrics
        registry.counters["executions"] = registry.counters.get("executions", 0) + 1
        bound = self.current_bound
        registry.executions_by_bound[bound] = (
            registry.executions_by_bound.get(bound, 0) + 1
        )
        if self.bus.active:
            if not self._in_execution:
                # Zero-transition execution (e.g. a terminal initial
                # state): synthesize the start so pairs always match.
                self.bus.emit(ExecutionStarted(self.now(), index))
            self.bus.emit(ExecutionFinished(self.now(), index, states))
        self._in_execution = False

    def bug_found(self, bug: "BugReport", new: bool) -> None:
        if new:
            self.metrics.add("bugs_found")
        if self.bus.active:
            self.bus.emit(
                BugFound(
                    self.now(),
                    bug_kind=bug.kind.value,
                    message=bug.message,
                    preemptions=bug.preemptions,
                    new=new,
                )
            )

    def analysis_completed(self, analysis: "ProgramAnalysis") -> None:
        """Milestone: the pre-search static analysis pass finished."""
        self.metrics.add("analyses")
        summary = analysis.summary
        top = [t for t in summary.threads if t.top]
        if top:
            # A TOP fallback is never silent: the count is a counter
            # and the reasons travel on the event.
            self.metrics.add("analysis_top_threads", len(top))
        if self.bus.active:
            self.bus.emit(
                AnalysisCompleted(
                    self.now(),
                    program=summary.program,
                    threads=len(summary.threads),
                    top_threads=len(top),
                    proven_local=len(analysis.proven_local),
                    candidates=len(analysis.candidates),
                    findings=len(analysis.findings),
                    top_reasons="; ".join(
                        f"{t.label}: {t.top_reason}" for t in top
                    ),
                )
            )

    # -- space-level hooks -------------------------------------------------

    def race_check_start(self) -> float:
        return self.hook_race.start()

    def race_checked(self, races: int, t0: float = 0.0) -> None:
        self.hook_race.stop(t0)
        registry = self.metrics
        registry.counters["race_checks"] = registry.counters.get("race_checks", 0) + 1
        if races:
            registry.add("races_found", races)
            if self.bus.active:
                self.bus.emit(RaceChecked(self.now(), races))

    def cache_lookup(self, hit: bool) -> None:
        registry = self.metrics
        registry.counters["cache_lookups"] = (
            registry.counters.get("cache_lookups", 0) + 1
        )
        if hit:
            registry.counters["cache_hits"] = registry.counters.get("cache_hits", 0) + 1

    # -- parallel-engine hooks ---------------------------------------------

    def worker_heartbeat(self, worker: int, executions: int, transitions: int) -> None:
        self.metrics.add("worker_heartbeats")
        if self.bus.active:
            self.bus.emit(WorkerHeartbeat(self.now(), worker, executions, transitions))

    # -- durability hooks (see repro.service) -------------------------------

    def checkpoint_saved(
        self, sequence: int, bound: int, frontier: int, deferred: int, executions: int
    ) -> None:
        self.metrics.add("checkpoints_saved")
        if self.bus.active:
            self.bus.emit(
                CheckpointSaved(
                    self.now(), sequence, bound, frontier, deferred, executions
                )
            )

    def checkpoint_resumed(
        self, sequence: int, bound: int, executions: int, transitions: int
    ) -> None:
        self.metrics.add("checkpoint_resumes")
        if self.bus.active:
            self.bus.emit(
                CheckpointResumed(self.now(), sequence, bound, executions, transitions)
            )

    def cache_served(self, key: str, program: str) -> None:
        self.metrics.add("result_cache_hits")
        if self.bus.active:
            self.bus.emit(ResultCacheServed(self.now(), key, program))

    # -- fleet hooks (see repro.net) -----------------------------------------

    def http_request(self, method: str, path: str, status: int) -> None:
        """The HTTP front-end answered one request."""
        self.metrics.add("http_requests")
        if self.bus.active:
            self.bus.emit(HttpRequestServed(self.now(), method, path, status))

    def lease_claimed(self, job: str, fence: int) -> None:
        self.metrics.add("lease_claims")

    def lease_renewed(self, job: str, fence: int) -> None:
        self.metrics.add("lease_renewals")
        if self.bus.active:
            self.bus.emit(LeaseRenewed(self.now(), job, fence))

    def lease_takeover(self, job: str, fence: int, prior_owner: str) -> None:
        """A peer's expired lease was broken; its job requeued."""
        self.metrics.add("lease_takeovers")
        if self.bus.active:
            self.bus.emit(LeaseTakeover(self.now(), job, fence, prior_owner))

    def cache_sync_hit(self, key: str, source: str, kind: str = "result") -> None:
        """A cache entry or trace was pulled from a peer daemon."""
        self.metrics.add("cache_sync_hits")
        if self.bus.active:
            self.bus.emit(CacheSyncApplied(self.now(), key, source, kind))

    def cache_push_sent(self, key: str, peer: str) -> None:
        """A fresh result-cache entry was pushed to a peer at job
        completion, ahead of its anti-entropy sweep."""
        self.metrics.add("cache_pushes")
        if self.bus.active:
            self.bus.emit(CachePushSent(self.now(), key, peer))

    # -- in-vivo hooks (see repro.invivo) -------------------------------------

    def invivo_run(
        self, program: str, threads: int, handshakes: int, abandoned: int
    ) -> None:
        """A checking run over an in-vivo program finished; totals are
        cumulative over the program object's executions."""
        registry = self.metrics
        registry.add("invivo_runs")
        registry.set_gauge("invivo_threads", float(threads))
        registry.set_gauge("invivo_handshakes", float(handshakes))
        registry.set_gauge("invivo_abandoned", float(abandoned))
        if self.bus.active:
            self.bus.emit(
                InvivoRun(self.now(), program, threads, handshakes, abandoned)
            )

    # -- freezing ----------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the metrics (with phase timings when profiling)."""
        return self.metrics.snapshot(profile=self.profile if self.profiling else None)

    def close(self) -> None:
        """Close every subscribed sink."""
        self.bus.close()
