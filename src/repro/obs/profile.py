"""Phase timers: where does the wall time of a search go?

The search loop decomposes into recurring kinds of work:

* ``analysis`` -- the one-shot static analysis pass before the search
  starts (``ChessChecker(..., analysis=True)``);
* ``schedule`` -- asking the space which threads are enabled;
* ``execute`` -- running one transition (including stateless replay);
* ``fingerprint`` -- canonical state hashing;
* ``race-detect`` -- happens-before data-race checks (a sub-phase of
  ``execute``, reported separately because it is the classic hot
  spot);
* ``cache-lookup`` -- the work-item table of Algorithm 1.

A :class:`Profiler` accumulates exact per-phase totals from
``perf_counter`` pairs.  Full-fidelity timing costs two clock reads
per hooked call, so it is opt-in (``Instrumentation(profiling=True)``,
CLI ``--profile``); the always-on sampled latency histograms live in
:mod:`repro.obs.metrics` instead.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

#: Canonical phase names, in reporting order.
PHASES: Tuple[str, ...] = (
    "analysis",
    "schedule",
    "execute",
    "fingerprint",
    "race-detect",
    "cache-lookup",
)


class Profiler:
    """Exact accumulated wall time per phase.

    ``race-detect`` nests inside ``execute``; phase totals therefore
    partition the *instrumented* work, not the raw wall clock, and the
    report shows fractions of elapsed time rather than of the sum.
    """

    __slots__ = ("seconds", "calls")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def start(self) -> float:
        return time.perf_counter()

    def stop(self, phase: str, t0: float) -> None:
        self.seconds[phase] = (
            self.seconds.get(phase, 0.0) + time.perf_counter() - t0
        )
        self.calls[phase] = self.calls.get(phase, 0) + 1

    def add(self, phase: str, seconds: float, calls: int = 1) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.calls[phase] = self.calls.get(phase, 0) + calls

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Picklable/mergeable form: phase -> {seconds, calls}."""
        return {
            phase: {"seconds": self.seconds[phase], "calls": self.calls.get(phase, 0)}
            for phase in self.seconds
        }

    def absorb(self, data: Dict[str, Dict[str, float]]) -> None:
        for phase, cells in data.items():
            self.add(phase, cells["seconds"], int(cells["calls"]))

    def report(self, elapsed: Optional[float] = None) -> str:
        return self.render(self.as_dict(), elapsed)

    @staticmethod
    def render(
        data: Dict[str, Dict[str, float]], elapsed: Optional[float] = None
    ) -> str:
        """Aligned per-phase table; stable order, known phases first."""
        known = [p for p in PHASES if p in data]
        extra = sorted(p for p in data if p not in PHASES)
        lines = ["phase profile:"]
        lines.append("  phase         seconds     calls  share")
        for phase in known + extra:
            cells = data[phase]
            seconds, calls = cells["seconds"], int(cells["calls"])
            share = (
                f"{100 * seconds / elapsed:5.1f}%"
                if elapsed and elapsed > 0
                else "     -"
            )
            lines.append(f"  {phase:<12}  {seconds:8.4f}  {calls:>8}  {share}")
        return "\n".join(lines)
