"""``InvivoProgram``: real threading code as a checkable ``Program``.

An :class:`InvivoProgram` subclasses :class:`~repro.core.program.Program`
and overrides only ``instantiate()``, so everything downstream --
:class:`~repro.core.execution.Execution`'s fingerprint/enabled-set
interface, :class:`~repro.chess.checker.ChessChecker`, the ICB
strategies, witness traces, minimization, the result cache -- consumes
it unchanged.  Its setup function takes **no arguments** (real code
has no ``World``); it creates adapter objects and returns plain
callables as threads::

    def make_program():
        def setup():
            lock = invivo.Lock()
            hits = invivo.Shared(0)

            def worker():
                with lock:
                    hits.set(hits.get() + 1)

            return {"a": worker, "b": worker}

        return InvivoProgram("two-hits", setup)

:class:`monkeypatch` substitutes the adapter classes for
``threading.*`` inside target modules, so unmodified library code can
be checked without editing it (within the supported subset; see
``docs/invivo.md``).
"""

from __future__ import annotations

import importlib
import inspect
import threading as _threading
from types import ModuleType
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..core.program import Program, SetupResult, ThreadSpec, _normalize_threads
from ..core.world import World
from ..errors import ProgramDefinitionError
from . import adapters
from .runner import (
    DEFAULT_HANDSHAKE_TIMEOUT,
    InvivoContext,
    InvivoError,
    activate,
    make_bridge,
)


class InvivoProgram(Program):
    """A program whose threads are plain callables using the adapters.

    Args:
        name: display name used in reports and traces.
        setup: zero-argument function creating the shared adapters and
            returning the threads (same shapes as the DSL: a mapping
            ``{label: callable}`` or ``(label, callable[, args])``
            tuples) -- re-run from scratch for every execution, which
            is what makes replays deterministic.
        expected_bugs: optional documentation of seeded defects.
        handshake_timeout: seconds the engine waits for a user thread
            to reach its next adapter operation.
        patch: an optional :class:`monkeypatch` applied (permanently)
            before the first execution, for code that does
            ``import threading`` directly.
    """

    def __init__(
        self,
        name: str,
        setup: Callable[[], SetupResult],
        expected_bugs: Tuple[str, ...] = (),
        handshake_timeout: float = DEFAULT_HANDSHAKE_TIMEOUT,
        patch: Optional["monkeypatch"] = None,
    ) -> None:
        super().__init__(name, setup, expected_bugs)
        self.handshake_timeout = handshake_timeout
        self.patch = patch
        #: Cumulative run statistics across every execution of this
        #: program object; surfaced through obs as the ``invivo_run``
        #: event and ``invivo_*`` counters.
        self.invivo_stats: Dict[str, int] = {
            "threads": 0,
            "handshakes": 0,
            "abandoned": 0,
        }

    def instantiate_raw(
        self,
    ) -> Tuple[World, InvivoContext, List[ThreadSpec]]:
        """Run setup once; return the world, context and *raw* specs.

        The raw ``(label, fn, args)`` specs carry the user callables
        themselves, before bridging -- what the static analyzer in
        :mod:`repro.analysis.invivo` interprets (the bridge generators
        have no analyzable source).  ``instantiate`` wraps the same
        specs in bridges for execution.
        """
        if self.patch is not None:
            self.patch.apply()
        world = World()
        ctx = InvivoContext(world, self)
        with activate(ctx):
            result = self.setup()
            if inspect.isgenerator(result):
                raise ProgramDefinitionError(
                    f"setup of {self.name!r} is a generator; an in-vivo "
                    "setup is a plain zero-argument function returning "
                    "the initial threads"
                )
            specs = _normalize_threads(result)
        return world, ctx, specs

    def instantiate(self) -> Tuple[World, List[ThreadSpec]]:
        world, ctx, specs = self.instantiate_raw()
        return world, [
            (label, make_bridge(ctx, label, fn, args), ())
            for label, fn, args in specs
        ]


#: threading attributes the shim substitutes with adapters.
_SUBSTITUTES = (
    "Lock",
    "RLock",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Condition",
)

#: threading attributes whose use would escape scheduler control.
_UNSUPPORTED = ("Thread", "Timer", "Barrier")


class _ThreadingShim(ModuleType):
    """Stands in for the ``threading`` module inside a patched module.

    Substituted primitives resolve to the invivo adapters; the
    unsupported ones raise immediately (an uncontrolled real thread
    would silently destroy determinism); everything else -- constants,
    ``current_thread``, ``local`` -- delegates to real ``threading``.
    """

    def __init__(self) -> None:
        super().__init__("threading", _threading.__doc__)
        for name in _SUBSTITUTES:
            setattr(self, name, getattr(adapters, name))

    def __getattr__(self, name: str) -> Any:
        if name in _UNSUPPORTED:
            raise InvivoError(
                f"threading.{name} is not supported under in-vivo "
                "checking; declare every thread in the program's setup() "
                "(see docs/invivo.md for the supported subset)"
            )
        return getattr(_threading, name)


class monkeypatch:
    """Substitute ``threading`` primitives inside target modules.

    Works as a context manager (``with monkeypatch(mod): ...``) or
    applied permanently (``monkeypatch(mod).apply()``, the usual form
    inside a ``make_program`` factory).  Two kinds of references are
    rewritten in each target module's namespace:

    * a module-level ``threading`` import becomes a shim whose
      primitive classes are the adapters;
    * names imported directly (``from threading import Lock``) are
      replaced when they still point at the real primitive.

    The adapter classes bind to the active execution context at
    *construction* time, so a permanently patched module keeps working
    across executions -- as long as it constructs its primitives inside
    ``setup()`` (or a checked thread), never at import time.
    """

    def __init__(self, *modules: Union[str, ModuleType]) -> None:
        if not modules:
            raise InvivoError("monkeypatch needs at least one target module")
        self.modules = [
            importlib.import_module(m) if isinstance(m, str) else m
            for m in modules
        ]
        self._saved = None

    def apply(self) -> "monkeypatch":
        if self._saved is not None:
            return self  # already applied; idempotent
        shim = _ThreadingShim()
        saved = []
        for module in self.modules:
            if getattr(module, "threading", None) is _threading:
                saved.append((module, "threading", _threading))
                module.threading = shim
            for attr in _SUBSTITUTES:
                if getattr(module, attr, None) is getattr(_threading, attr):
                    saved.append((module, attr, getattr(module, attr)))
                    setattr(module, attr, getattr(adapters, attr))
        self._saved = saved
        return self

    def restore(self) -> None:
        if self._saved is None:
            return
        for module, attr, original in self._saved:
            setattr(module, attr, original)
        self._saved = None

    def __enter__(self) -> "monkeypatch":
        return self.apply()

    def __exit__(self, *exc: Any) -> bool:
        self.restore()
        return False
