"""The cooperative runner: real OS threads under scheduler control.

The generator DSL gives the engine a natural co-routine boundary --
``yield`` -- at every shared access.  Real ``threading`` code has no
such boundary, so the in-vivo runner manufactures one: each user
callable runs on a real (daemon) OS thread that *parks on a handshake*
whenever it performs a synchronization operation.  A per-thread
:class:`Channel` relays the operation to a small *bridge generator*
(the thread body the engine actually drives), the bridge yields the
corresponding :class:`~repro.core.effects.Effect`, and the engine's
result travels back across the handshake before the user thread may
take another step.  Exactly one user thread runs at any moment -- the
one whose bridge the deterministic scheduler chose to advance -- so
the search explores real code with the same replayable determinism as
the DSL (the Sthread construction; see ``docs/invivo.md``).

Scheduling points are exactly the adapter operations, which is the
Section 3.1 ``sync_only`` reduction: code between two adapter calls is
a local computation the scheduler never interrupts.
"""

from __future__ import annotations

import threading as _threading
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Generator,
    Iterator,
    Optional,
    Tuple,
)

from ..core.effects import Effect
from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.world import World
    from .program import InvivoProgram

#: How long the engine waits for a user thread to reach its next
#: adapter operation before declaring the handshake broken.  Generous:
#: it only fires when user code blocks outside the adapters (real I/O,
#: a real lock), which in-vivo checking cannot control.
DEFAULT_HANDSHAKE_TIMEOUT = 30.0

#: How long an abandoned user thread is given to unwind.
_JOIN_TIMEOUT = 2.0


class InvivoError(ReproError):
    """Misuse of the in-vivo harness itself (not a program-under-test
    bug): adapter use outside a checked execution, an object escaping
    into a later execution, or a broken handshake."""


class _Abort(BaseException):
    """Raised inside an abandoned user thread to unwind it promptly.

    Derives from ``BaseException`` so ordinary ``except Exception``
    handlers in user code cannot swallow the teardown.
    """


_tls = _threading.local()


class Channel:
    """The two-sided handshake between the engine and one user thread.

    Two events act as batons: ``_to_engine`` carries the user thread's
    next request (an effect to perform, or its final outcome) and
    ``_to_user`` carries the engine's response.  The protocol strictly
    alternates, so each slot has a single writer at any time.
    """

    __slots__ = (
        "ctx",
        "label",
        "timeout",
        "thread",
        "aborting",
        "done",
        "name_counters",
        "_to_user",
        "_to_engine",
        "_request",
        "_response",
    )

    def __init__(self, ctx: "InvivoContext", label: str, timeout: float) -> None:
        self.ctx = ctx
        self.label = label
        self.timeout = timeout
        self.thread: Optional[_threading.Thread] = None
        self.aborting = False
        self.done = False
        #: Per-kind counters naming objects created mid-run by this
        #: thread (canonical across executions, like alloc_counter).
        self.name_counters: Dict[str, int] = {}
        self._to_user = _threading.Event()
        self._to_engine = _threading.Event()
        self._request: Optional[Tuple[str, Any]] = None
        self._response: Any = None

    # -- user-thread side ----------------------------------------------------

    def perform(self, effect: Effect) -> Any:
        """Hand ``effect`` to the engine; park until it answers."""
        self._request = ("effect", effect)
        self._to_engine.set()
        self._to_user.wait()
        self._to_user.clear()
        if self.aborting:
            raise _Abort()
        return self._response

    def finish(self, outcome: Tuple[str, Any]) -> None:
        """Report the callable's final outcome (``done`` or ``error``)."""
        self._request = outcome
        self._to_engine.set()

    # -- engine side ---------------------------------------------------------

    def await_request(self) -> Tuple[str, Any]:
        """Block until the user thread parks again; return its request."""
        if not self._to_engine.wait(self.timeout):
            self.aborting = True
            raise InvivoError(
                f"in-vivo thread {self.label!r} did not reach a "
                f"synchronization operation within {self.timeout:.0f}s; "
                "every blocking call must go through the repro.invivo "
                "adapters (real I/O and real locks stall the handshake)"
            )
        self._to_engine.clear()
        assert self._request is not None
        kind, payload = self._request
        self._request = None
        if kind != "effect":
            self.done = True
        return kind, payload

    def resume(self, value: Any) -> Tuple[str, Any]:
        """Deliver an effect's result; wait for the next request."""
        self._response = value
        self._to_user.set()
        return self.await_request()

    def abandon(self) -> bool:
        """Unwind the user thread; ``True`` if it was still mid-run."""
        was_running = not self.done
        self.aborting = True
        self._to_user.set()
        thread = self.thread
        if thread is not None and thread.is_alive():
            thread.join(_JOIN_TIMEOUT)
        return was_running


class InvivoContext:
    """Execution-scoped home of every adapter-backed shared object.

    A fresh context (and a fresh :class:`~repro.core.world.World`) is
    built per execution, so adapters constructed in ``setup()`` or
    inside checked threads always land in state the current replay
    owns -- the stateless checker's from-scratch determinism.
    """

    def __init__(self, world: "World", program: "InvivoProgram") -> None:
        self.world = world
        self.program = program
        self._counters: Dict[str, int] = {}

    def fresh_name(self, kind: str) -> str:
        """A canonical auto-name for an unnamed adapter.

        Setup-time objects number globally (``lock#0``); objects a
        checked thread creates mid-run number per thread label
        (``lock@worker#0``) so the name only depends on the thread's
        own history, never on the schedule around it.
        """
        channel = getattr(_tls, "channel", None)
        if channel is not None and channel.ctx is self:
            n = channel.name_counters.get(kind, 0)
            channel.name_counters[kind] = n + 1
            return f"{kind}@{channel.label}#{n}"
        n = self._counters.get(kind, 0)
        self._counters[kind] = n + 1
        return f"{kind}#{n}"


#: The context active while an InvivoProgram instantiates (engine
#: thread only); checked threads find theirs through ``_tls.channel``.
_ambient: Optional[InvivoContext] = None


@contextmanager
def activate(ctx: InvivoContext) -> Iterator[InvivoContext]:
    """Make ``ctx`` ambient while the program's setup() runs."""
    global _ambient
    if _ambient is not None:
        raise InvivoError(
            "an in-vivo program is already instantiating; programs must "
            "be built one at a time"
        )
    _ambient = ctx
    try:
        yield ctx
    finally:
        _ambient = None


def current_context() -> InvivoContext:
    """The context an adapter constructed *here* belongs to."""
    channel = getattr(_tls, "channel", None)
    if channel is not None:
        return channel.ctx
    if _ambient is not None:
        return _ambient
    raise InvivoError(
        "no in-vivo execution is active here: create invivo objects "
        "inside an InvivoProgram's setup() or inside one of its checked "
        "threads (module import time is too early)"
    )


def perform(ctx: InvivoContext, effect: Effect) -> Any:
    """Relay one adapter operation into the controlled scheduler."""
    channel = getattr(_tls, "channel", None)
    if channel is None:
        raise InvivoError(
            "in-vivo synchronization is only possible inside a checked "
            "thread; this call ran outside the controlled scheduler "
            "(setup() may create objects but must not operate on them)"
        )
    if channel.aborting:
        raise _Abort()
    if channel.ctx is not ctx:
        raise InvivoError(
            "this invivo object belongs to a different execution; create "
            "per-program shared state inside setup() so every replay "
            "starts fresh"
        )
    return channel.perform(effect)


def _user_main(
    channel: Channel, fn: Callable[..., Any], args: Tuple[Any, ...]
) -> None:
    """Entry point of the real OS thread running one user callable."""
    from ..errors import ProgramAssertionError

    _tls.channel = channel
    outcome: Optional[Tuple[str, Any]] = ("done", None)
    try:
        fn(*args)
    except _Abort:
        outcome = None  # the engine moved on; nothing to report
    except AssertionError as exc:
        if not isinstance(exc, ProgramAssertionError):
            exc = ProgramAssertionError(str(exc) or "assertion failed")
        outcome = ("error", exc)
    except BaseException as exc:  # noqa: BLE001 - program-under-test fault
        outcome = ("error", exc)
    finally:
        _tls.channel = None
    if outcome is not None:
        channel.finish(outcome)


def make_bridge(
    ctx: InvivoContext, label: str, fn: Callable[..., Any], args: Tuple[Any, ...]
) -> Callable[[], Generator[Effect, Any, None]]:
    """Wrap a user callable as a generator thread body.

    The returned generator function is what the engine drives: it
    starts the OS thread lazily (on the thread's START step), relays
    each parked operation as a yielded effect, re-raises the user
    callable's uncaught exception (so the engine classifies it exactly
    as it would a DSL body's), and -- however the generator ends,
    including ``close()`` from a discarded execution -- unwinds the OS
    thread so no execution leaks one.
    """

    def bridge() -> Generator[Effect, Any, None]:
        channel = Channel(ctx, label, ctx.program.handshake_timeout)
        thread = _threading.Thread(
            target=_user_main,
            args=(channel, fn, args),
            name=f"invivo:{ctx.program.name}:{label}",
            daemon=True,
        )
        channel.thread = thread
        stats = ctx.program.invivo_stats
        stats["threads"] += 1
        try:
            thread.start()
            kind, payload = channel.await_request()
            while kind == "effect":
                stats["handshakes"] += 1
                value = yield payload
                kind, payload = channel.resume(value)
            if kind == "error":
                raise payload
        finally:
            if channel.abandon():
                stats["abandoned"] += 1

    return bridge
