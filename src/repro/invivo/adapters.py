"""Drop-in ``threading`` primitives that relay into the model checker.

Each adapter owns a shared object from :mod:`repro.core` and turns the
``threading``-shaped method calls user code makes into the exact
:class:`~repro.core.effects.EffectKind` vocabulary the engine already
interprets -- the adapter/DSL parity the tests in ``tests/invivo``
pin down operation by operation:

========================  =============================================
``Lock.acquire``           ``ACQUIRE`` (``TRY_ACQUIRE`` non-blocking)
``Lock.release``           ``RELEASE``
``Lock.locked``            ``ATOMIC_READ``
``RLock`` (re-entrant)     ``ACQUIRE``/``TRY_ACQUIRE``/``RELEASE``
``Event.wait/set/clear``   ``WAIT``/``SIGNAL``/``RESET``
``Event.is_set``           ``ATOMIC_READ``
``Semaphore.acquire``      ``SEM_ACQUIRE`` (``TRY_ACQUIRE`` non-blocking)
``Semaphore.release``      ``SEM_RELEASE``
``Condition.wait``         ``CV_WAIT``
``Condition.notify(_all)`` ``CV_NOTIFY`` / ``CV_BROADCAST``
``Shared.get/set``         ``READ``/``WRITE`` (race-checked data)
``Atomic.*``               ``ATOMIC_*``/``CAS``/``EXCHANGE``
========================  =============================================

Deliberate divergences from ``threading`` (see ``docs/invivo.md``):
timeouts are modelled as waiting forever (a timeout never fires in the
model); releasing a lock from a non-owner is reported as a LOCK_ERROR
bug instead of raising ``RuntimeError``; ``Condition`` requires an
:class:`Lock` (not the re-entrant default of ``threading``).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..core import sync as _sync
from ..core import variables as _vars
from ..core.effects import Effect
from .runner import InvivoContext, InvivoError, current_context, perform


class _Adapter:
    """Base adapter: binds to the active execution context when built."""

    __slots__ = ("_ctx", "name")
    _kind = "object"

    def __init__(self, name: Optional[str] = None) -> None:
        self._ctx: InvivoContext = current_context()
        self.name = name or self._ctx.fresh_name(self._kind)

    def _perform(self, effect: Effect) -> Any:
        return perform(self._ctx, effect)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<invivo.{type(self).__name__} {self.name!r}>"


class Lock(_Adapter):
    """``threading.Lock``: a non-re-entrant mutex."""

    __slots__ = ("_mutex",)
    _kind = "lock"

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._mutex = _sync.Mutex(self._ctx.world, self.name)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if not blocking:
            return bool(self._perform(self._mutex.try_acquire()))
        self._perform(self._mutex.acquire())
        return True

    def release(self) -> None:
        self._perform(self._mutex.release())

    def locked(self) -> bool:
        return bool(self._perform(self._mutex.poll()))

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> bool:
        self.release()
        return False


class RLock(_Adapter):
    """``threading.RLock``: re-entrant acquisition by the owner."""

    __slots__ = ("_section",)
    _kind = "rlock"

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._section = _sync.CriticalSection(self._ctx.world, self.name)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if not blocking:
            return bool(self._perform(self._section.try_enter()))
        self._perform(self._section.enter())
        return True

    def release(self) -> None:
        self._perform(self._section.leave())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> bool:
        self.release()
        return False


class Event(_Adapter):
    """``threading.Event``: a manual-reset flag threads wait on."""

    __slots__ = ("_event",)
    _kind = "event"

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._event = _sync.Event(self._ctx.world, self.name, initial=False)

    def is_set(self) -> bool:
        return bool(self._perform(self._event.poll()))

    def set(self) -> None:
        self._perform(self._event.set())

    def clear(self) -> None:
        self._perform(self._event.reset())

    def wait(self, timeout: Optional[float] = None) -> bool:
        self._perform(self._event.wait())
        return True


class Semaphore(_Adapter):
    """``threading.Semaphore``: a counting semaphore."""

    __slots__ = ("_sem",)
    _kind = "semaphore"

    def __init__(
        self,
        value: int = 1,
        name: Optional[str] = None,
        _maximum: Optional[int] = None,
    ) -> None:
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        super().__init__(name)
        self._sem = _sync.Semaphore(
            self._ctx.world, self.name, initial=value, maximum=_maximum
        )

    def acquire(self, blocking: bool = True, timeout: Optional[float] = None) -> bool:
        if not blocking:
            return bool(self._perform(self._sem.try_acquire()))
        self._perform(self._sem.acquire())
        return True

    def release(self, n: int = 1) -> None:
        if n < 1:
            raise ValueError("n must be one or more")
        self._perform(self._sem.release(n))

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> bool:
        self.release()
        return False


class BoundedSemaphore(Semaphore):
    """``threading.BoundedSemaphore``: releasing past the initial
    value is reported as a LOCK_ERROR bug (instead of ValueError)."""

    _kind = "bsemaphore"

    def __init__(self, value: int = 1, name: Optional[str] = None) -> None:
        super().__init__(value, name, _maximum=value)


class Condition(_Adapter):
    """``threading.Condition`` over an :class:`Lock` (Mesa-style).

    Unlike ``threading``, the default (and only) underlying lock is a
    plain :class:`Lock`: the engine's condition-variable protocol
    releases and re-acquires a non-re-entrant mutex, so re-entrant
    locks are rejected rather than silently mis-modelled.
    """

    __slots__ = ("_lock", "_cv")
    _kind = "condition"

    def __init__(
        self, lock: Optional[Lock] = None, name: Optional[str] = None
    ) -> None:
        super().__init__(name)
        if lock is None:
            lock = Lock(name=f"{self.name}.lock")
        if not isinstance(lock, Lock):
            raise InvivoError(
                "invivo.Condition requires an invivo.Lock; re-entrant "
                "locks cannot back the engine's wait/notify protocol"
            )
        if lock._ctx is not self._ctx:
            raise InvivoError(
                "the condition's lock belongs to a different execution"
            )
        self._lock = lock
        self._cv = _sync.CondVar(self._ctx.world, self.name)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        return self._lock.acquire(blocking, timeout)

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> bool:
        return self._lock.__enter__()

    def __exit__(self, *exc: Any) -> bool:
        return self._lock.__exit__(*exc)

    def wait(self, timeout: Optional[float] = None) -> bool:
        self._perform(self._cv.wait(self._lock._mutex))
        return True

    def wait_for(
        self, predicate: Callable[[], Any], timeout: Optional[float] = None
    ) -> Any:
        result = predicate()
        while not result:
            self.wait()
            result = predicate()
        return result

    def notify(self, n: int = 1) -> None:
        for _ in range(n):
            self._perform(self._cv.notify())

    def notify_all(self) -> None:
        self._perform(self._cv.broadcast())


class Shared(_Adapter):
    """A race-checked shared data slot (the paper's ``DataVar``).

    Plain Python attributes are invisible to the checker; state that
    threads share must live in :class:`Shared` (or :class:`Atomic`)
    for race detection and state fingerprints to see it.  Values must
    be hashable (use tuples, not lists).
    """

    __slots__ = ("_var",)
    _kind = "shared"

    def __init__(self, initial: Any = None, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._var = _vars.SharedVar(self._ctx.world, self.name, initial)

    def get(self) -> Any:
        return self._perform(self._var.read())

    def set(self, value: Any) -> None:
        self._perform(self._var.write(value))

    value = property(get, set)


class Atomic(_Adapter):
    """An atomic variable with interlocked operations (``SyncVar``)."""

    __slots__ = ("_var",)
    _kind = "atomic"

    def __init__(self, initial: Any = 0, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._var = _vars.AtomicVar(self._ctx.world, self.name, initial)

    def get(self) -> Any:
        return self._perform(self._var.read())

    def set(self, value: Any) -> None:
        self._perform(self._var.write(value))

    def add(self, delta: Any = 1) -> Any:
        """Atomic add; returns the *new* value."""
        return self._perform(self._var.add(delta))

    def cas(self, expected: Any, new: Any) -> bool:
        """Compare-and-swap; ``True`` on success."""
        return bool(self._perform(self._var.cas(expected, new)))

    def exchange(self, new: Any) -> Any:
        """Atomic exchange; returns the *old* value."""
        return self._perform(self._var.exchange(new))

    value = property(get, set)
