"""In-vivo checking: point the model checker at real ``threading`` code.

The DSL in :mod:`repro.programs` expresses programs as generators that
yield effects.  This package checks *ordinary* Python threading code
instead: adapter classes with the ``threading`` API surface
(:class:`Lock`, :class:`RLock`, :class:`Event`, :class:`Semaphore`,
:class:`BoundedSemaphore`, :class:`Condition`) plus explicit shared
state (:class:`Shared`, :class:`Atomic`), a cooperative runner that
parks each user callable on a real OS thread so the deterministic
scheduler decides who advances, and :class:`monkeypatch` to substitute
``threading.*`` inside unmodified modules.  An :class:`InvivoProgram`
plugs into :class:`~repro.chess.checker.ChessChecker`, traces, and the
CLI (``repro check --module pkg.mod:make_program``) unchanged.

See ``docs/invivo.md`` for the supported subset and its caveats.
"""

from .adapters import (
    Atomic,
    BoundedSemaphore,
    Condition,
    Event,
    Lock,
    RLock,
    Semaphore,
    Shared,
)
from .program import InvivoProgram, monkeypatch
from .runner import DEFAULT_HANDSHAKE_TIMEOUT, InvivoError

__all__ = [
    "Atomic",
    "BoundedSemaphore",
    "Condition",
    "DEFAULT_HANDSHAKE_TIMEOUT",
    "Event",
    "InvivoError",
    "InvivoProgram",
    "Lock",
    "Shared",
    "RLock",
    "Semaphore",
    "monkeypatch",
]
