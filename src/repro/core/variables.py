"""Shared variables: plain data variables and atomic (sync) variables.

The distinction between :class:`SharedVar` (a member of the paper's
``DataVar`` set) and :class:`AtomicVar` (a member of ``SyncVar``)
determines where the ``sync_only`` scheduling policy introduces
scheduling points.  The paper's CHESS infers the partition dynamically
from how real binaries use memory; here the partition is explicit in
the API: interlocked operations are only available on
:class:`AtomicVar`, and plain reads/writes of an :class:`AtomicVar`
have volatile (synchronizing) semantics, like ``volatile`` fields in
Java or interlocked-accessed words in Win32 programs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Hashable

from ..errors import BugKind
from .effects import Effect, EffectKind
from .objects import BugSignal, SharedObject

if TYPE_CHECKING:  # pragma: no cover
    from .thread import ThreadState
    from .world import World


def _require_hashable(value: Any, where: str) -> Any:
    try:
        hash(value)
    except TypeError:
        raise BugSignal(
            BugKind.INVARIANT,
            f"unhashable value stored in {where}: {value!r}",
        ) from None
    return value


class SharedVar(SharedObject):
    """A plain shared data variable (``DataVar`` in the paper).

    Accesses are *data* accesses: under the ``sync_only`` policy they
    execute atomically with the preceding synchronization access and
    are checked for data races.  Values must be hashable so they can be
    folded into state fingerprints.
    """

    is_sync = False

    def __init__(self, world: "World", name: str, initial: Any = None) -> None:
        super().__init__(world, name)
        self.initial = initial
        self.value = initial

    # -- effect constructors (yielded by thread bodies) ---------------

    def read(self) -> Effect:
        """Read the variable; the yield result is its current value."""
        return Effect(EffectKind.READ, self)

    def write(self, value: Any) -> Effect:
        """Write ``value`` to the variable."""
        return Effect(EffectKind.WRITE, self, (value,))

    # -- semantics ----------------------------------------------------

    def apply(self, effect: Effect, thread: "ThreadState") -> Any:
        if effect.kind is EffectKind.READ:
            return self.value
        if effect.kind is EffectKind.WRITE:
            self.value = _require_hashable(effect.args[0], self.name)
            return None
        return super().apply(effect, thread)

    def snapshot(self) -> Hashable:
        return ("var", self.value)

    def is_write(self, effect: Effect) -> bool:
        """Whether ``effect`` modifies this variable (for race checks)."""
        return effect.kind is EffectKind.WRITE


class AtomicVar(SharedObject):
    """An atomic shared variable (a member of ``SyncVar``).

    Supports the interlocked operations of the Win32 API the paper's
    benchmarks use: atomic read/write, compare-and-swap, fetch-and-add,
    and exchange.  Every access is a synchronization access: it is a
    scheduling point under ``sync_only``, and it orders the
    happens-before relation with every other access to the same
    variable (the paper's dependence relation makes *all* same-sync-var
    accesses dependent).
    """

    is_sync = True

    def __init__(self, world: "World", name: str, initial: Any = 0) -> None:
        super().__init__(world, name)
        self.initial = initial
        self.value = initial

    # -- effect constructors -------------------------------------------

    def read(self) -> Effect:
        """Volatile read; the yield result is the current value."""
        return Effect(EffectKind.ATOMIC_READ, self)

    def write(self, value: Any) -> Effect:
        """Volatile write of ``value``."""
        return Effect(EffectKind.ATOMIC_WRITE, self, (value,))

    def cas(self, expected: Any, new: Any) -> Effect:
        """Compare-and-swap; the yield result is ``True`` on success."""
        return Effect(EffectKind.CAS, self, (expected, new))

    def add(self, delta: Any) -> Effect:
        """Atomic add; the yield result is the *new* value, matching
        Win32 ``InterlockedIncrement``/``InterlockedDecrement``."""
        return Effect(EffectKind.ATOMIC_ADD, self, (delta,))

    def exchange(self, new: Any) -> Effect:
        """Atomic exchange; the yield result is the *old* value."""
        return Effect(EffectKind.EXCHANGE, self, (new,))

    # -- semantics ----------------------------------------------------

    def apply(self, effect: Effect, thread: "ThreadState") -> Any:
        kind = effect.kind
        if kind is EffectKind.ATOMIC_READ:
            return self.value
        if kind is EffectKind.ATOMIC_WRITE:
            self.value = _require_hashable(effect.args[0], self.name)
            return None
        if kind is EffectKind.CAS:
            expected, new = effect.args
            if self.value == expected:
                self.value = _require_hashable(new, self.name)
                return True
            return False
        if kind is EffectKind.ATOMIC_ADD:
            self.value = self.value + effect.args[0]
            return self.value
        if kind is EffectKind.EXCHANGE:
            old = self.value
            self.value = _require_hashable(effect.args[0], self.name)
            return old
        return super().apply(effect, thread)

    def snapshot(self) -> Hashable:
        return ("atomic", self.value)


def make_array(world: "World", name: str, values: list, atomic: bool = False):
    """Create a list of shared variables modelling a shared array.

    Each element is an independent variable named ``name[i]``; accesses
    to distinct indices are independent steps, matching how the paper's
    benchmarks (e.g. the work-stealing queue's circular buffer) use
    arrays.
    """
    cls = AtomicVar if atomic else SharedVar
    return [cls(world, f"{name}[{i}]", v) for i, v in enumerate(values)]
