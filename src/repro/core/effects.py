"""The operation vocabulary of the controlled runtime.

A thread body is a Python generator.  Every interaction with shared
state is expressed by yielding an :class:`Effect`; the execution engine
performs the effect and sends the result back into the generator::

    def worker():
        yield lock.acquire()
        v = yield counter.read()
        yield counter.write(v + 1)
        yield lock.release()

Local computation between yields is free, which matches the paper's
model where a *step* is exactly one shared-variable access.

Effects are plain immutable descriptions; all semantics live in the
shared objects (:mod:`repro.core.variables`, :mod:`repro.core.sync`,
:mod:`repro.core.heap`) and in the engine
(:mod:`repro.core.execution`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional, Tuple


class EffectKind(enum.Enum):
    """Every operation a thread can perform on shared state."""

    # Plain data-variable accesses.
    READ = "read"
    WRITE = "write"

    # Interlocked operations on atomic (synchronization) variables.
    ATOMIC_READ = "atomic-read"
    ATOMIC_WRITE = "atomic-write"
    CAS = "cas"
    ATOMIC_ADD = "atomic-add"
    EXCHANGE = "exchange"

    # Mutexes and critical sections.
    ACQUIRE = "acquire"
    TRY_ACQUIRE = "try-acquire"
    RELEASE = "release"

    # Events (auto- and manual-reset).
    WAIT = "wait"
    SIGNAL = "signal"
    RESET = "reset"

    # Semaphores.
    SEM_ACQUIRE = "sem-acquire"
    SEM_RELEASE = "sem-release"

    # Condition variables (engine-coordinated).
    CV_WAIT = "cv-wait"
    CV_NOTIFY = "cv-notify"
    CV_BROADCAST = "cv-broadcast"

    # Reader-writer locks.
    RW_ACQUIRE_READ = "rw-acquire-read"
    RW_ACQUIRE_WRITE = "rw-acquire-write"
    RW_RELEASE = "rw-release"

    # Shared heap.
    ALLOC = "alloc"
    FREE = "free"
    HEAP_READ = "heap-read"
    HEAP_WRITE = "heap-write"

    # Thread management.
    SPAWN = "spawn"
    JOIN = "join"
    YIELD = "yield"

    # Engine-internal lifecycle steps.  START is the implicit first
    # operation of every thread: a wait on its creation event (Appendix
    # A of the paper guarantees the first operation of any thread
    # accesses a synchronization variable).  EXIT is the implicit final
    # operation: it signals the thread's termination event, after which
    # the thread is never enabled again.
    START = "start"
    EXIT = "exit"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Effect kinds that can block the issuing thread (disable it until the
#: resource becomes available).  These are the "potentially-blocking"
#: instructions counted as B in Table 1 of the paper.
BLOCKING_KINDS = frozenset(
    {
        EffectKind.ACQUIRE,
        EffectKind.WAIT,
        EffectKind.SEM_ACQUIRE,
        EffectKind.CV_WAIT,
        EffectKind.RW_ACQUIRE_READ,
        EffectKind.RW_ACQUIRE_WRITE,
        EffectKind.JOIN,
        EffectKind.START,
    }
)

#: Effect kinds that end an execution context even though they may not
#: block: the paper models thread termination as a block on the
#: thread's termination event that is never signalled.
CONTEXT_ENDING_KINDS = BLOCKING_KINDS | {EffectKind.EXIT, EffectKind.YIELD}

#: Kinds handled directly by the execution engine rather than by a
#: shared object's ``apply`` method.
ENGINE_KINDS = frozenset(
    {
        EffectKind.SPAWN,
        EffectKind.JOIN,
        EffectKind.YIELD,
        EffectKind.START,
        EffectKind.EXIT,
        EffectKind.ALLOC,
        EffectKind.CV_WAIT,
        EffectKind.CV_NOTIFY,
        EffectKind.CV_BROADCAST,
    }
)


@dataclass(frozen=True)
class Effect:
    """An immutable description of one shared-state operation.

    Attributes:
        kind: which operation this is.
        target: the shared object operated on (``None`` for pure
            engine effects such as SPAWN and YIELD).
        args: operation operands (e.g. the value to write, the CAS
            expected/new pair, the thread handle to join).
    """

    kind: EffectKind
    target: Any = None
    args: Tuple[Any, ...] = ()

    def __repr__(self) -> str:
        target = "" if self.target is None else f" {self.target!r}"
        args = "" if not self.args else f" args={self.args!r}"
        return f"<Effect {self.kind}{target}{args}>"

    @property
    def may_block(self) -> bool:
        """Whether this effect can disable the issuing thread."""
        return self.kind in BLOCKING_KINDS

    @property
    def ends_context(self) -> bool:
        """Whether this effect terminates an execution context."""
        return self.kind in CONTEXT_ENDING_KINDS


def spawn(fn: Any, *args: Any, name: Optional[str] = None) -> Effect:
    """Create a new thread running ``fn(*args)``.

    ``fn`` must be a generator function (a thread body).  The effect's
    result is a :class:`~repro.core.thread.ThreadHandle` which can be
    passed to :func:`join`.

    The spawn step signals the child's creation event, so every write
    the parent performed before the spawn happens-before everything the
    child does (the fork edge of the happens-before relation).
    """
    return Effect(EffectKind.SPAWN, None, (fn, args, name))


def join(handle: Any) -> Effect:
    """Block until the thread behind ``handle`` has terminated.

    Modelled as a wait on the target thread's termination event, which
    creates the join edge of the happens-before relation.
    """
    return Effect(EffectKind.JOIN, None, (handle,))


def sched_yield() -> Effect:
    """A voluntary scheduling point that accesses no shared variable.

    The yielding thread remains enabled, so per the paper's definition
    a switch away from it still counts as a preemption.  Yields are
    useful to widen the scheduling surface of otherwise access-free
    code regions.
    """
    return Effect(EffectKind.YIELD)


def alloc(name: str = "obj", **fields: Any) -> Effect:
    """Allocate a fresh heap object with the given named fields.

    The effect's result is a :class:`~repro.core.heap.HeapRef`.
    """
    return Effect(EffectKind.ALLOC, None, (name, tuple(sorted(fields.items()))))
