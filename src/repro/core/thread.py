"""Thread identities and per-thread execution state.

Thread identifiers are *hierarchical*: a root thread created by the
program's setup gets path ``(i,)`` in declaration order, and the k-th
thread spawned by a parent gets the parent's path extended with ``k``.
This makes identifiers canonical across equivalent executions (two
interleavings with the same happens-before relation name every thread
identically), which in turn makes state fingerprints canonical.

Per Appendix A of the paper, every thread's first operation is a wait
on its *creation event* (signalled by the parent's spawn step, or
pre-signalled for root threads) and its conceptual last operation is a
block on its *termination event*.  We realize this with the implicit
START and EXIT steps of :mod:`repro.core.execution`; ``join`` waits on
the termination event.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional, Sequence, Tuple, Union

from .hashing import stable_hash

if TYPE_CHECKING:  # pragma: no cover
    from .effects import Effect
    from .sync import Event


@dataclass(frozen=True, order=True)
class ThreadId:
    """A canonical, hierarchical thread identifier.

    Ordering and hashing use only the path, so labels are free-form
    display names.  The scheduler's enabled set is sorted by path,
    giving deterministic exploration order.
    """

    path: Tuple[int, ...]
    label: str = ""

    def child(self, index: int, label: str = "") -> "ThreadId":
        """The identifier of this thread's ``index``-th spawned child."""
        return ThreadId(self.path + (index,), label or f"{self.label}.{index}")

    @classmethod
    def from_path(
        cls, path: Union[str, Sequence[int]], label: str = ""
    ) -> "ThreadId":
        """Rebuild an identifier from a serialized path.

        The inverse of :attr:`path` (and of the dotted rendering
        ``".".join(map(str, path))``), so thread identities round-trip
        losslessly through JSON trace files.  Accepts either a sequence
        of non-negative integers or a dotted string like ``"0.2.1"``.
        """
        if isinstance(path, str):
            text = path.strip()
            if not text:
                raise ValueError("thread path string must be non-empty")
            try:
                parts = tuple(int(piece) for piece in text.split("."))
            except ValueError as exc:
                raise ValueError(f"malformed thread path {path!r}") from exc
        else:
            parts = tuple(path)
            if not parts:
                raise ValueError("thread path must be non-empty")
            if not all(isinstance(piece, int) and not isinstance(piece, bool) for piece in parts):
                raise ValueError(f"thread path must contain only integers, got {path!r}")
        if any(piece < 0 for piece in parts):
            raise ValueError(f"thread path indices must be non-negative, got {parts!r}")
        return cls(parts, label)

    def __hash__(self) -> int:
        return hash(self.path)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ThreadId) and self.path == other.path

    def __str__(self) -> str:
        return self.label or ".".join(map(str, self.path))

    def __repr__(self) -> str:
        return f"ThreadId({self.path!r}, {self.label!r})"


class ThreadStatus(enum.Enum):
    """Lifecycle of a thread under test."""

    #: Created but has not yet executed its START step.
    NEW = "new"
    #: Executing its body.
    ACTIVE = "active"
    #: Body completed and EXIT step executed.
    FINISHED = "finished"
    #: Body raised; the execution is failed.
    FAILED = "failed"


@dataclass(frozen=True)
class ThreadHandle:
    """The value a ``spawn`` effect yields back to the parent.

    Pass it to :func:`repro.core.effects.join` to wait for the child.
    Hashable so it can flow through state fingerprints.
    """

    tid: ThreadId

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<handle {self.tid}>"


class ThreadState:
    """Mutable per-execution state of one thread.

    The *input hash chain* accumulates a hash of every value the engine
    sends into the generator.  Because thread bodies are deterministic,
    the pair (steps executed, input chain) fully determines the
    thread's local state, which lets state fingerprints identify
    program states without snapshotting generator frames.
    """

    def __init__(
        self,
        tid: ThreadId,
        body: Callable[..., Iterator["Effect"]],
        args: Tuple[Any, ...],
        created_event: "Event",
        done_event: "Event",
    ) -> None:
        self.tid = tid
        self.body = body
        self.args = args
        self.created_event = created_event
        self.done_event = done_event

        self.status = ThreadStatus.NEW
        self.generator: Optional[Iterator["Effect"]] = None
        #: The effect the thread will execute when next scheduled
        #: (NV(alpha, t) in the paper's notation).
        self.pending: Optional["Effect"] = None

        #: Number of steps (shared accesses) this thread has executed.
        self.steps = 0
        #: Number of potentially-blocking steps executed (B in Table 1).
        self.blocking_steps = 0
        #: Rolling hash of all values delivered into the generator.
        self.input_chain = 0
        #: Counter for canonical naming of spawned children and
        #: heap allocations performed by this thread.
        self.spawn_counter = 0
        self.alloc_counter = 0

    # -- bookkeeping ----------------------------------------------------

    def record_input(self, value: Any) -> None:
        """Fold a delivered value into the input hash chain.

        Uses :func:`stable_hash` so the chain (and therefore every
        state fingerprint downstream of it) agrees across processes
        under a pinned ``PYTHONHASHSEED`` -- most delivered values are
        ``None``, which id-hashes before Python 3.12.
        """
        try:
            h = stable_hash(value)
        except TypeError:
            h = hash(repr(value))
        self.input_chain = hash((self.input_chain, h))

    @property
    def alive(self) -> bool:
        """Whether the thread can still take steps."""
        return self.status in (ThreadStatus.NEW, ThreadStatus.ACTIVE)

    def local_fingerprint(self) -> Tuple[Any, ...]:
        """Hashable summary of the thread's local state."""
        return (self.status.value, self.steps, self.input_chain)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ThreadState {self.tid} {self.status.value} "
            f"steps={self.steps} pending={self.pending!r}>"
        )
