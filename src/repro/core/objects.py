"""Shared-object base class.

Every piece of shared state in a program under test is a
:class:`SharedObject` registered with a :class:`~repro.core.world.World`.
Objects classify themselves as *synchronization* objects (mutexes,
events, semaphores, atomic variables, ...) or *data* objects (plain
shared variables, heap fields).  The classification drives the
``sync_only`` scheduling-point policy of Section 3.1: scheduling points
are introduced only before accesses to synchronization objects, and a
per-execution race detector verifies that data accesses are ordered by
the happens-before relation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Hashable, Optional

from ..errors import BugKind

if TYPE_CHECKING:  # pragma: no cover
    from .effects import Effect
    from .thread import ThreadState
    from .world import World


class BugSignal(Exception):
    """Internal signal: the current step triggered a program bug.

    Raised by shared objects or the engine while applying an effect;
    the engine converts it into a :class:`~repro.errors.BugReport` and
    marks the execution as failed.  Never escapes the engine.
    """

    def __init__(self, kind: BugKind, message: str, **details: Any) -> None:
        super().__init__(message)
        self.kind = kind
        self.message = message
        self.details = tuple(sorted(details.items()))


class SharedObject:
    """Base class for all shared state visible to multiple threads.

    Subclasses implement:

    * :meth:`is_enabled` -- whether a pending effect on this object can
      execute now (``False`` means the issuing thread is blocked).
    * :meth:`apply` -- perform the effect, returning the value sent
      back into the thread generator.
    * :meth:`snapshot` -- a hashable summary of the object's current
      state, folded into the execution's state fingerprint.
    """

    #: Whether accesses to this object are synchronization accesses.
    is_sync: bool = True

    def __init__(self, world: "World", name: str) -> None:
        self.world = world
        self.name = name
        #: Registration index; deterministic across replays because
        #: worlds are rebuilt by the same setup function every time.
        self.index = world._register(self)

    # -- semantics ----------------------------------------------------

    def is_enabled(self, effect: "Effect", thread: "ThreadState") -> bool:
        """Whether ``effect`` issued by ``thread`` can execute now."""
        return True

    def apply(self, effect: "Effect", thread: "ThreadState") -> Any:
        """Execute ``effect``; return the value for the generator."""
        raise NotImplementedError(
            f"{type(self).__name__} does not handle {effect.kind}"
        )

    def snapshot(self) -> Hashable:
        """Hashable summary of current state for fingerprinting."""
        raise NotImplementedError

    # -- release notification -----------------------------------------

    def release_edge_source(self) -> Optional["SharedObject"]:
        """The object whose clock a release-style access publishes to.

        Most objects publish to themselves; heap fields publish to
        their owning reference.  Used by the happens-before tracker.
        """
        return self

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"

    def __hash__(self) -> int:
        # Hash by (stable, per-execution-unique) name so that shared
        # objects can be *stored as values* in shared variables without
        # breaking fingerprint determinism across replays: the default
        # identity hash differs between the fresh worlds of two
        # executions of the same schedule.  Equality stays identity.
        return hash(self.name)
