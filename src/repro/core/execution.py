"""The deterministic execution engine.

An :class:`Execution` runs one schedule of a program under complete
scheduler control, realizing the paper's formal model:

* the program starts from the unique initial state built by the setup
  function;
* at every *scheduling point* the engine exposes the set of enabled
  threads (``enabled(alpha)``) and the search strategy picks one;
* :meth:`Execution.execute` runs the chosen thread for one step,
  updating happens-before clocks, race-detector state, the preemption
  count NP (Appendix A.1), and the state fingerprint;
* the engine records every bug (assertion failure, deadlock, data
  race, use-after-free, ...) with the witness schedule and its
  preemption count.

Scheduling-point policies (Section 3.1 of the paper):

* ``EVERY_ACCESS`` -- a scheduling point after every shared-variable
  access: the baseline semantics of Section 2;
* ``SYNC_ONLY`` -- scheduling points only *before* synchronization
  accesses; the data accesses following a sync access execute
  atomically with it.  This is the reduction of Section 3.1, sound as
  long as each execution is checked for data races (Theorems 2 and 3),
  which the engine does by default.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    BugKind,
    BugReport,
    ProgramAssertionError,
    ProgramDefinitionError,
    SchedulingError,
)
from ..races.goldilocks import GoldilocksDetector
from ..races.happens_before import HBTracker
from ..races.vectorclock import VectorClock
from .effects import Effect, EffectKind
from .heap import HeapRef
from .objects import BugSignal, SharedObject
from .program import Program
from .sync import CondVar, Event, Mutex
from .thread import ThreadHandle, ThreadId, ThreadState, ThreadStatus

Schedule = Tuple[ThreadId, ...]


class SchedulingPolicy(enum.Enum):
    """Where scheduling points are introduced (Section 3.1)."""

    EVERY_ACCESS = "every-access"
    SYNC_ONLY = "sync-only"


class RaceDetection(enum.Enum):
    """Which data-race detector(s) run on each execution."""

    NONE = "none"
    VECTOR_CLOCK = "vector-clock"
    GOLDILOCKS = "goldilocks"
    BOTH = "both"


@dataclass(frozen=True)
class ExecutionConfig:
    """Configuration shared by every execution of one checking run."""

    policy: SchedulingPolicy = SchedulingPolicy.SYNC_ONLY
    race_detection: RaceDetection = RaceDetection.VECTOR_CLOCK
    #: Use the strict Appendix-A race definition (read-read conflicts).
    strict_races: bool = False
    #: Whether a detected race fails the execution (it must for the
    #: sync-only reduction to remain sound; see Theorem 3).
    races_are_fatal: bool = True
    #: Report a deadlock when no thread is enabled but some are alive.
    deadlock_is_bug: bool = True
    #: Upper bound on shared accesses within one SYNC_ONLY big step;
    #: exceeding it means the thread spins on data variables, which can
    #: never be broken by a context switch, so it is reported as a
    #: livelock bug in the program under test.
    max_accesses_per_step: int = 20_000
    #: Monitor factories: callables receiving the execution and
    #: returning monitor objects (see :mod:`repro.monitors`).
    monitors: Tuple[Callable[["Execution"], Any], ...] = ()
    #: Extension beyond the paper: treat ``free`` as a write to every
    #: field of the freed object, so a free that is merely *unordered*
    #: with a field access is reported as a race even on schedules
    #: where the access happens to execute first.  The paper's CHESS
    #: only observes the crash when the access physically follows the
    #: free, which is what the default reproduces.
    free_conflicts: bool = False


@dataclass(frozen=True)
class StepRecord:
    """One scheduling step (possibly a multi-access big step)."""

    index: int
    tid: ThreadId
    preempting: bool
    #: Every shared access performed in this step: (kind, target name).
    accesses: Tuple[Tuple[EffectKind, Optional[str]], ...]
    #: The thread's vector clock after the step.
    clock: VectorClock
    #: State fingerprint after the step.
    fingerprint: int
    #: Preemption count NP after the step.
    preemptions: int

    @property
    def kind(self) -> EffectKind:
        """The scheduling-visible (first) access of the step."""
        return self.accesses[0][0] if self.accesses else EffectKind.YIELD


#: Effect kinds the engine itself interprets.
_ENGINE_DISPATCH = frozenset(
    {
        EffectKind.START,
        EffectKind.EXIT,
        EffectKind.SPAWN,
        EffectKind.JOIN,
        EffectKind.YIELD,
        EffectKind.ALLOC,
        EffectKind.CV_WAIT,
        EffectKind.CV_NOTIFY,
        EffectKind.CV_BROADCAST,
    }
)

_DATA_KINDS = frozenset(
    {EffectKind.READ, EffectKind.WRITE, EffectKind.HEAP_READ, EffectKind.HEAP_WRITE}
)


class Execution:
    """One controlled execution of a program.

    The basic interaction loop of a search strategy is::

        ex = Execution(program, config)
        while not ex.finished:
            tid = pick(ex.enabled_threads())
            ex.execute(tid)

    ``finished`` becomes true at a terminal state (every thread done or
    blocked) or as soon as a bug fails the execution.
    """

    def __init__(self, program: Program, config: Optional[ExecutionConfig] = None):
        self.program = program
        self.config = config or ExecutionConfig()

        world, specs = program.instantiate()
        self.world = world
        self.threads: Dict[ThreadId, ThreadState] = {}
        for i, (label, body, args) in enumerate(specs):
            tid = ThreadId((i,), label)
            self._add_thread(tid, body, args, created=True)

        self.schedule: List[ThreadId] = []
        self.step_records: List[StepRecord] = []
        self.bugs: List[BugReport] = []
        self.preemptions = 0
        self.last_tid: Optional[ThreadId] = None
        self.total_accesses = 0
        self.failed = False
        self.completed = False
        self.deadlocked = False

        #: Optional Instrumentation, bound by ProgramStateSpace; the
        #: race-check sites below time and count through it.
        self.obs = None

        self.hb = HBTracker(strict=self.config.strict_races)
        use_gl = self.config.race_detection in (
            RaceDetection.GOLDILOCKS,
            RaceDetection.BOTH,
        )
        self.goldilocks: Optional[GoldilocksDetector] = (
            GoldilocksDetector() if use_gl else None
        )
        self._use_vc_races = self.config.race_detection in (
            RaceDetection.VECTOR_CLOCK,
            RaceDetection.BOTH,
        )
        self.monitors = [factory(self) for factory in self.config.monitors]

    # -- thread management ---------------------------------------------------

    def _add_thread(
        self,
        tid: ThreadId,
        body: Callable[..., Any],
        args: Tuple[Any, ...],
        created: bool,
    ) -> ThreadState:
        prefix = "$thread." + ".".join(map(str, tid.path))
        created_event = Event(self.world, f"{prefix}.created", initial=created)
        done_event = Event(self.world, f"{prefix}.done", initial=False)
        thread = ThreadState(tid, body, args, created_event, done_event)
        thread.pending = Effect(EffectKind.START, created_event)
        self.threads[tid] = thread
        return thread

    # -- state queries -----------------------------------------------------

    @property
    def finished(self) -> bool:
        """No further scheduling is possible."""
        return self.failed or self.completed

    def enabled_threads(self) -> Tuple[ThreadId, ...]:
        """The set enabled(alpha): threads whose pending step can run."""
        if self.failed:
            return ()
        enabled = [
            t.tid
            for t in self.threads.values()
            if t.pending is not None and self._effect_enabled(t, t.pending)
        ]
        enabled.sort(key=lambda tid: tid.path)
        return tuple(enabled)

    def _effect_enabled(self, thread: ThreadState, effect: Effect) -> bool:
        kind = effect.kind
        if kind is EffectKind.START:
            return thread.created_event.is_set
        if kind is EffectKind.JOIN:
            handle = effect.args[0]
            return self.threads[handle.tid].done_event.is_set
        if kind in _ENGINE_DISPATCH:
            return True
        target = effect.target
        if target is None:
            return True
        return target.is_enabled(effect, thread)

    def pending_effect(self, tid: ThreadId) -> Optional[Effect]:
        """NV(alpha, t): the effect ``tid`` will execute next."""
        return self.threads[tid].pending

    def pending_footprint(self, tid: ThreadId) -> frozenset:
        """Names of the shared objects ``tid``'s next step will touch.

        Two pending steps with disjoint footprints are *independent*:
        they commute and neither enables or disables the other.  Exact
        only under the ``EVERY_ACCESS`` policy (a ``SYNC_ONLY`` big
        step also performs data accesses that are unknowable before
        executing it); the partial-order-reduction strategies check
        the policy before relying on this.
        """
        thread = self.threads[tid]
        effect = thread.pending
        if effect is None:
            return frozenset()
        kind = effect.kind
        if kind is EffectKind.START:
            return frozenset({thread.created_event.name})
        if kind is EffectKind.EXIT:
            return frozenset({thread.done_event.name})
        if kind is EffectKind.SPAWN:
            # The child's creation event is fresh: nothing else can
            # touch it before this step runs.
            return frozenset({f"$spawn.{tid}.{thread.spawn_counter}"})
        if kind is EffectKind.ALLOC:
            return frozenset({f"$alloc.{tid}.{thread.alloc_counter}"})
        if kind is EffectKind.JOIN:
            target = self.threads[effect.args[0].tid]
            return frozenset({target.done_event.name})
        if kind is EffectKind.YIELD:
            return frozenset({f"$yield.{tid}"})
        names = set()
        target = effect.target
        if target is not None:
            names.add(target.name)
            # A heap-field access conflicts with freeing the owner, and
            # an operation on a guarded sync object conflicts with
            # freeing its guard; include those owners in the footprint.
            owner = getattr(target, "owner", None)
            if owner is not None:
                names.add(owner.name)
            guard = getattr(target, "guard", None)
            if guard is not None:
                names.add(guard.name)
            fields = getattr(target, "fields", None)
            if fields:  # freeing/allocating touches every field
                names.update(field.name for field in fields.values())
        if kind is EffectKind.CV_WAIT:
            names.add(effect.args[0].name)
        return frozenset(names)

    def fingerprint(self) -> int:
        """Canonical hash of the current program state.

        Combines the shared-state snapshot with each thread's local
        fingerprint (steps executed plus input hash chain).  Equal
        happens-before relations produce equal fingerprints, making
        this the paper's HB-based state representation in incremental
        form.
        """
        threads_fp = frozenset(
            (t.tid.path, t.local_fingerprint()) for t in self.threads.values()
        )
        return hash((self.world.fingerprint(), threads_fp))

    # -- bug reporting -------------------------------------------------------

    def report_bug(
        self,
        kind: BugKind,
        message: str,
        thread: Optional[ThreadId] = None,
        details: Tuple[Tuple[str, Any], ...] = (),
        fatal: bool = True,
    ) -> BugReport:
        """Record a bug found in the current execution."""
        report = BugReport(
            kind=kind,
            message=message,
            thread=thread,
            schedule=tuple(self.schedule),
            preemptions=self.preemptions,
            step_index=len(self.step_records),
            details=details,
        )
        self.bugs.append(report)
        if fatal:
            self.failed = True
        return report

    def _note_races(self, thread: ThreadState, races: Sequence[Any]) -> None:
        for race in races:
            message = race.describe() if hasattr(race, "describe") else str(race)
            self.report_bug(
                BugKind.DATA_RACE,
                message,
                thread=thread.tid,
                fatal=self.config.races_are_fatal,
            )

    # -- the scheduler interface -----------------------------------------------

    def execute(self, tid: ThreadId) -> StepRecord:
        """Run thread ``tid`` for one step from the current state.

        Under ``SYNC_ONLY`` the step comprises the pending
        synchronization access plus every following data access up to
        (but excluding) the thread's next synchronization access.
        """
        if self.finished:
            raise SchedulingError("execution already finished")
        enabled = self.enabled_threads()
        if tid not in enabled:
            raise SchedulingError(
                f"thread {tid} is not enabled (enabled: {list(map(str, enabled))})"
            )
        thread = self.threads[tid]

        preempting = (
            self.last_tid is not None
            and tid != self.last_tid
            and self.last_tid in enabled
        )
        if preempting:
            self.preemptions += 1
        self.schedule.append(tid)

        accesses: List[Tuple[EffectKind, Optional[str]]] = []
        budget = self.config.max_accesses_per_step
        while True:
            effect = thread.pending
            assert effect is not None
            self._apply_one(thread, effect, accesses)
            if self.failed or not thread.alive or thread.pending is None:
                break
            if self.config.policy is SchedulingPolicy.EVERY_ACCESS:
                break
            if self._is_scheduling_point(thread.pending):
                break
            budget -= 1
            if budget <= 0:
                self.report_bug(
                    BugKind.LIVELOCK,
                    f"thread {tid} performed {self.config.max_accesses_per_step} "
                    "consecutive data accesses without reaching a "
                    "synchronization operation (data spin loops cannot be "
                    "broken by a context switch under the sync-only policy)",
                    thread=tid,
                )
                break

        record = StepRecord(
            index=len(self.step_records),
            tid=tid,
            preempting=preempting,
            accesses=tuple(accesses),
            clock=self.hb.clock_of(tid),
            fingerprint=self.fingerprint(),
            preemptions=self.preemptions,
        )
        self.step_records.append(record)
        self.last_tid = tid

        for monitor in self.monitors:
            monitor.on_step(self, record)

        if not self.failed and not self.enabled_threads():
            self.completed = True
            alive = [t for t in self.threads.values() if t.alive]
            if alive:
                self.deadlocked = True
                if self.config.deadlock_is_bug:
                    blocked = ", ".join(
                        f"{t.tid} waiting on {t.pending!r}" for t in alive
                    )
                    self.report_bug(
                        BugKind.DEADLOCK,
                        f"deadlock: no thread is enabled ({blocked})",
                    )
            for monitor in self.monitors:
                monitor.on_terminal(self)
        return record

    def _is_scheduling_point(self, effect: Effect) -> bool:
        """Whether the *next* pending effect starts a new step."""
        if effect.kind in _DATA_KINDS:
            return False
        return True

    # -- effect interpretation -----------------------------------------------

    def _apply_one(
        self,
        thread: ThreadState,
        effect: Effect,
        accesses: List[Tuple[EffectKind, Optional[str]]],
    ) -> None:
        target = effect.target
        try:
            guard: Optional[HeapRef] = getattr(target, "guard", None)
            if guard is not None:
                guard.check_alive(f"{effect.kind} on {target.name}")
            value, advance = self._dispatch(thread, effect)
        except BugSignal as signal:
            self.report_bug(
                signal.kind, signal.message, thread=thread.tid, details=signal.details
            )
            thread.status = ThreadStatus.FAILED
            thread.pending = None
            return

        thread.steps += 1
        self.total_accesses += 1
        if effect.may_block or effect.kind is EffectKind.EXIT:
            thread.blocking_steps += 1
        name = target.name if isinstance(target, SharedObject) else None
        accesses.append((effect.kind, name))

        if advance:
            self._advance(thread, value)

    def _dispatch(self, thread: ThreadState, effect: Effect) -> Tuple[Any, bool]:
        """Execute one effect; return (value for generator, advance?)."""
        kind = effect.kind
        tid = thread.tid

        if kind is EffectKind.START:
            self._sync_hb(thread, effect, [thread.created_event])
            thread.status = ThreadStatus.ACTIVE
            generator = thread.body(*thread.args)
            if not hasattr(generator, "send"):
                raise ProgramDefinitionError(
                    f"thread body {thread.body!r} of {tid} is not a generator "
                    "function; thread bodies must yield effects"
                )
            thread.generator = generator
            return None, True

        if kind is EffectKind.EXIT:
            self._sync_hb(thread, effect, [thread.done_event])
            thread.done_event.is_set = True
            thread.status = ThreadStatus.FINISHED
            thread.pending = None
            return None, False

        if kind is EffectKind.SPAWN:
            body, args, name = effect.args
            index = thread.spawn_counter
            thread.spawn_counter += 1
            child_tid = tid.child(index, name or f"{tid.label}.{index}")
            if child_tid in self.threads:
                raise ProgramDefinitionError(f"duplicate thread id {child_tid}")
            child = self._add_thread(child_tid, body, tuple(args), created=False)
            child.created_event.is_set = True
            self._sync_hb(thread, effect, [child.created_event])
            return ThreadHandle(child_tid), True

        if kind is EffectKind.JOIN:
            handle = effect.args[0]
            if not isinstance(handle, ThreadHandle):
                raise ProgramDefinitionError(f"join expects a ThreadHandle, got {handle!r}")
            done = self.threads[handle.tid].done_event
            self._sync_hb(thread, effect, [done])
            return None, True

        if kind is EffectKind.YIELD:
            self.hb.local_step(tid)
            return None, True

        if kind is EffectKind.ALLOC:
            name, fields = effect.args
            heap_name = f"{name}#{tid}:{thread.alloc_counter}"
            thread.alloc_counter += 1
            ref = HeapRef(self.world, heap_name, dict(fields))
            self._sync_hb(thread, effect, [ref])
            return ref, True

        if kind is EffectKind.CV_WAIT:
            cv = effect.target
            (mutex,) = effect.args
            if not isinstance(mutex, Mutex) or mutex.holder != tid:
                raise BugSignal(
                    BugKind.LOCK_ERROR,
                    f"condition wait on {cv.name} without holding "
                    f"{getattr(mutex, 'name', mutex)!r}",
                )
            mutex.holder = None
            cv.waiters.append((tid, mutex))
            self._sync_hb(thread, effect, [cv, mutex])
            # Park: the sentinel WAIT is never enabled; a notify
            # rewrites it to an ACQUIRE of the mutex.
            thread.pending = Effect(EffectKind.WAIT, cv)
            return None, False

        if kind in (EffectKind.CV_NOTIFY, EffectKind.CV_BROADCAST):
            cv = effect.target
            assert isinstance(cv, CondVar)
            count = 1 if kind is EffectKind.CV_NOTIFY else len(cv.waiters)
            for _ in range(min(count, len(cv.waiters))):
                waiter_tid, mutex = cv.waiters.pop(0)
                self.threads[waiter_tid].pending = Effect(EffectKind.ACQUIRE, mutex)
            self._sync_hb(thread, effect, [cv])
            return None, True

        # Object-interpreted effects.
        target = effect.target
        if target is None:
            raise ProgramDefinitionError(f"effect {effect!r} has no target")

        if kind is EffectKind.FREE:
            value = target.apply(effect, thread)
            self._sync_hb(thread, effect, [target])
            if self.config.free_conflicts:
                # Extension: deallocation conflicts with every concurrent
                # access to the object's storage, so model the free as a
                # write to each field and let the race detectors flag an
                # unordered free even when the access executed first.
                assert isinstance(target, HeapRef)
                obs = self.obs
                for fld in target.fields.values():
                    t0 = obs.race_check_start() if obs is not None else 0.0
                    found = 0
                    _, races = self.hb.data_access(tid, fld, True)
                    if self._use_vc_races and races:
                        self._note_races(thread, races)
                        found += len(races)
                    if self.goldilocks is not None:
                        race = self.goldilocks.on_data(tid, fld, True)
                        if race:
                            self._note_races(thread, [race])
                            found += 1
                    if obs is not None:
                        obs.race_checked(found, t0)
            return value, True

        if kind in _DATA_KINDS:
            value = target.apply(effect, thread)
            is_write = target.is_write(effect)
            obs = self.obs
            t0 = obs.race_check_start() if obs is not None else 0.0
            found = 0
            clock, races = self.hb.data_access(tid, target, is_write)
            if self._use_vc_races and races:
                self._note_races(thread, races)
                found += len(races)
            if self.goldilocks is not None:
                race = self.goldilocks.on_data(tid, target, is_write)
                if race:
                    self._note_races(thread, [race])
                    found += 1
            if obs is not None:
                obs.race_checked(found, t0)
            return value, True

        value = target.apply(effect, thread)
        self._sync_hb(thread, effect, [target])
        return value, True

    def _sync_hb(
        self, thread: ThreadState, effect: Effect, objects: List[SharedObject]
    ) -> None:
        self.hb.sync_access(thread.tid, objects)
        if self.goldilocks is not None:
            for obj in objects:
                self.goldilocks.on_sync(thread.tid, obj, effect.kind)

    def _advance(self, thread: ThreadState, value: Any) -> None:
        """Send ``value`` into the generator and capture its next effect."""
        thread.record_input(value)
        assert thread.generator is not None
        try:
            effect = thread.generator.send(value)
        except StopIteration:
            thread.pending = Effect(EffectKind.EXIT)
            return
        except ProgramAssertionError as exc:
            self.report_bug(BugKind.ASSERTION, exc.message, thread=thread.tid)
            thread.status = ThreadStatus.FAILED
            thread.pending = None
            return
        except BugSignal as signal:
            self.report_bug(
                signal.kind, signal.message, thread=thread.tid, details=signal.details
            )
            thread.status = ThreadStatus.FAILED
            thread.pending = None
            return
        except Exception as exc:  # noqa: BLE001 - program-under-test fault
            self.report_bug(
                BugKind.UNCAUGHT_EXCEPTION,
                f"{type(exc).__name__}: {exc}",
                thread=thread.tid,
            )
            thread.status = ThreadStatus.FAILED
            thread.pending = None
            return
        if not isinstance(effect, Effect):
            raise ProgramDefinitionError(
                f"thread {thread.tid} yielded {effect!r}; thread bodies must "
                "yield Effect objects (did you forget `yield from` on a "
                "composite operation?)"
            )
        thread.pending = effect

    # -- conveniences -----------------------------------------------------------

    @classmethod
    def replay(
        cls,
        program: Program,
        schedule: Sequence[ThreadId],
        config: Optional[ExecutionConfig] = None,
    ) -> "Execution":
        """Re-execute ``program`` under a recorded schedule."""
        ex = cls(program, config)
        for tid in schedule:
            ex.execute(tid)
        return ex

    def run_round_robin(self) -> "Execution":
        """Drive the execution to completion without any preemption.

        From any state a terminating program can be driven to
        completion by scheduling each thread until it yields the
        processor -- the paper's observation that even a bound of zero
        explores complete executions.
        """
        while not self.finished:
            enabled = self.enabled_threads()
            if self.last_tid is not None and self.last_tid in enabled:
                self.execute(self.last_tid)
            else:
                self.execute(enabled[0])
        return self

    def describe_trace(self) -> str:
        """Human-readable rendering of the executed steps."""
        lines = []
        for record in self.step_records:
            marker = "*" if record.preempting else " "
            ops = ", ".join(
                f"{kind}({name})" if name else str(kind)
                for kind, name in record.accesses
            )
            lines.append(f"{marker}[{record.index:3}] {record.tid}: {ops}")
        return "\n".join(lines)
