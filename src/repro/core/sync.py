"""Synchronization primitives (the paper's ``SyncVar`` objects).

These model the Win32 primitives the paper's benchmarks use: mutexes,
re-entrant critical sections, auto/manual-reset events, semaphores,
condition variables and reader-writer locks.  Every access to one of
these objects is a synchronization access: a scheduling point under the
``sync_only`` policy and a dependence edge in the happens-before
relation.

Blocking semantics are expressed through :meth:`is_enabled`: a thread
whose pending effect is disabled simply does not appear in the
scheduler's enabled set, exactly as in the paper's formal model.  A
switch away from a thread blocked here is a *nonpreempting* context
switch and is never counted against the preemption bound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Hashable, List, Optional, Tuple

from ..errors import BugKind
from .effects import Effect, EffectKind
from .objects import BugSignal, SharedObject
from .variables import AtomicVar

if TYPE_CHECKING:  # pragma: no cover
    from .heap import HeapRef
    from .thread import ThreadId, ThreadState
    from .world import World


class Mutex(SharedObject):
    """A non-re-entrant mutual-exclusion lock.

    Acquiring a mutex the thread already holds blocks forever (a
    self-deadlock, which the deadlock monitor reports).  Releasing a
    mutex the thread does not hold is a lock-usage bug.

    The optional ``guard`` ties the mutex's storage to a heap object:
    if that object is freed, any later operation on the mutex is
    reported as a use-after-free.  This models synchronization objects
    embedded in heap-allocated structures, such as the critical section
    inside Dryad's channel object (Figure 3 of the paper).
    """

    def __init__(
        self, world: "World", name: str, guard: Optional["HeapRef"] = None
    ) -> None:
        super().__init__(world, name)
        self.holder: Optional[Any] = None
        self.guard = guard

    # -- effect constructors -------------------------------------------

    def acquire(self) -> Effect:
        """Block until the mutex is free, then take it."""
        return Effect(EffectKind.ACQUIRE, self)

    def try_acquire(self) -> Effect:
        """Take the mutex if free; the yield result is ``True`` on
        success.  Never blocks."""
        return Effect(EffectKind.TRY_ACQUIRE, self)

    def release(self) -> Effect:
        """Release the mutex; a bug if the caller does not hold it."""
        return Effect(EffectKind.RELEASE, self)

    def poll(self) -> Effect:
        """Observe whether the mutex is held; the yield result is a
        bool.  A synchronization access (never blocks)."""
        return Effect(EffectKind.ATOMIC_READ, self)

    # -- semantics ----------------------------------------------------

    def is_enabled(self, effect: Effect, thread: "ThreadState") -> bool:
        if effect.kind is EffectKind.ACQUIRE:
            return self.holder is None
        return True

    def apply(self, effect: Effect, thread: "ThreadState") -> Any:
        kind = effect.kind
        if kind is EffectKind.ACQUIRE:
            self.holder = thread.tid
            return None
        if kind is EffectKind.ATOMIC_READ:
            return self.holder is not None
        if kind is EffectKind.TRY_ACQUIRE:
            if self.holder is None:
                self.holder = thread.tid
                return True
            return False
        if kind is EffectKind.RELEASE:
            if self.holder != thread.tid:
                raise BugSignal(
                    BugKind.LOCK_ERROR,
                    f"thread {thread.tid} released {self.name} "
                    f"held by {self.holder}",
                )
            self.holder = None
            return None
        return super().apply(effect, thread)

    def snapshot(self) -> Hashable:
        return ("mutex", self.holder)


class CriticalSection(SharedObject):
    """A re-entrant lock modelling Win32 ``CRITICAL_SECTION``.

    ``enter``/``leave`` mirror ``EnterCriticalSection`` and
    ``LeaveCriticalSection``; recursive entry by the owner succeeds and
    is counted, as in Win32.
    """

    def __init__(
        self, world: "World", name: str, guard: Optional["HeapRef"] = None
    ) -> None:
        super().__init__(world, name)
        self.holder: Optional[Any] = None
        self.count = 0
        self.guard = guard

    def enter(self) -> Effect:
        """EnterCriticalSection: block until available (re-entrant)."""
        return Effect(EffectKind.ACQUIRE, self)

    def try_enter(self) -> Effect:
        """TryEnterCriticalSection: never blocks, result is success."""
        return Effect(EffectKind.TRY_ACQUIRE, self)

    def leave(self) -> Effect:
        """LeaveCriticalSection: a bug if the caller is not the owner."""
        return Effect(EffectKind.RELEASE, self)

    def is_enabled(self, effect: Effect, thread: "ThreadState") -> bool:
        if effect.kind is EffectKind.ACQUIRE:
            return self.holder is None or self.holder == thread.tid
        return True

    def apply(self, effect: Effect, thread: "ThreadState") -> Any:
        kind = effect.kind
        if kind is EffectKind.ACQUIRE:
            self.holder = thread.tid
            self.count += 1
            return None
        if kind is EffectKind.TRY_ACQUIRE:
            if self.holder is None or self.holder == thread.tid:
                self.holder = thread.tid
                self.count += 1
                return True
            return False
        if kind is EffectKind.RELEASE:
            if self.holder != thread.tid:
                raise BugSignal(
                    BugKind.LOCK_ERROR,
                    f"thread {thread.tid} left {self.name} "
                    f"owned by {self.holder}",
                )
            self.count -= 1
            if self.count == 0:
                self.holder = None
            return None
        return super().apply(effect, thread)

    def snapshot(self) -> Hashable:
        return ("critsec", self.holder, self.count)


class Event(SharedObject):
    """A Win32-style event.

    A *manual-reset* event stays signalled until explicitly reset; an
    *auto-reset* event releases exactly one waiter and clears itself
    when that waiter's wait step executes.
    """

    def __init__(
        self,
        world: "World",
        name: str,
        initial: bool = False,
        auto_reset: bool = False,
        guard: Optional["HeapRef"] = None,
    ) -> None:
        super().__init__(world, name)
        self.is_set = initial
        self.auto_reset = auto_reset
        self.guard = guard

    def wait(self) -> Effect:
        """Block until the event is signalled."""
        return Effect(EffectKind.WAIT, self)

    def set(self) -> Effect:
        """Signal the event (``SetEvent``)."""
        return Effect(EffectKind.SIGNAL, self)

    def reset(self) -> Effect:
        """Clear the event (``ResetEvent``)."""
        return Effect(EffectKind.RESET, self)

    def poll(self) -> Effect:
        """Observe the signalled state without waiting; the yield
        result is a bool.  A synchronization access (never blocks)."""
        return Effect(EffectKind.ATOMIC_READ, self)

    def is_enabled(self, effect: Effect, thread: "ThreadState") -> bool:
        if effect.kind is EffectKind.WAIT:
            return self.is_set
        return True

    def apply(self, effect: Effect, thread: "ThreadState") -> Any:
        kind = effect.kind
        if kind is EffectKind.ATOMIC_READ:
            return self.is_set
        if kind is EffectKind.WAIT:
            if self.auto_reset:
                self.is_set = False
            return None
        if kind is EffectKind.SIGNAL:
            self.is_set = True
            return None
        if kind is EffectKind.RESET:
            self.is_set = False
            return None
        return super().apply(effect, thread)

    def snapshot(self) -> Hashable:
        return ("event", self.is_set)


class Semaphore(SharedObject):
    """A counting semaphore.

    ``acquire`` (P) blocks while the count is zero; ``release`` (V)
    increments it.  If ``maximum`` is given, releasing past it is a
    usage bug, matching Win32 ``ReleaseSemaphore`` failure.
    """

    def __init__(
        self,
        world: "World",
        name: str,
        initial: int = 0,
        maximum: Optional[int] = None,
    ) -> None:
        super().__init__(world, name)
        self.count = initial
        self.maximum = maximum

    def acquire(self) -> Effect:
        """P operation: block until the count is positive."""
        return Effect(EffectKind.SEM_ACQUIRE, self)

    def try_acquire(self) -> Effect:
        """Non-blocking P: decrement if positive; the yield result is
        ``True`` on success."""
        return Effect(EffectKind.TRY_ACQUIRE, self)

    def release(self, n: int = 1) -> Effect:
        """V operation: increment the count by ``n``."""
        return Effect(EffectKind.SEM_RELEASE, self, (n,))

    def is_enabled(self, effect: Effect, thread: "ThreadState") -> bool:
        if effect.kind is EffectKind.SEM_ACQUIRE:
            return self.count > 0
        return True

    def apply(self, effect: Effect, thread: "ThreadState") -> Any:
        kind = effect.kind
        if kind is EffectKind.SEM_ACQUIRE:
            self.count -= 1
            return None
        if kind is EffectKind.TRY_ACQUIRE:
            if self.count > 0:
                self.count -= 1
                return True
            return False
        if kind is EffectKind.SEM_RELEASE:
            (n,) = effect.args
            if self.maximum is not None and self.count + n > self.maximum:
                raise BugSignal(
                    BugKind.LOCK_ERROR,
                    f"semaphore {self.name} released past its maximum "
                    f"({self.count} + {n} > {self.maximum})",
                )
            self.count += n
            return None
        return super().apply(effect, thread)

    def snapshot(self) -> Hashable:
        return ("sem", self.count)


class CondVar(SharedObject):
    """A Mesa-style condition variable.

    ``wait(mutex)`` atomically releases the mutex and parks the thread;
    ``notify``/``broadcast`` move parked threads to re-acquisition,
    where they compete normally for the mutex.  The engine coordinates
    the two-phase wait (see :mod:`repro.core.execution`); this object
    only stores the waiter queue.
    """

    def __init__(self, world: "World", name: str) -> None:
        super().__init__(world, name)
        #: FIFO of (thread id, mutex to re-acquire).  Ids, not thread
        #: states: a waiter entry must not make the world reach the
        #: thread's body (an in-vivo bridge parked here would otherwise
        #: keep its own OS thread reachable and never unwind).
        self.waiters: List[Tuple["ThreadId", Mutex]] = []

    def wait(self, mutex: Mutex) -> Effect:
        """Release ``mutex``, park until notified, then re-acquire it.

        The issuing thread must hold ``mutex``.  As with any Mesa
        condition variable, re-check the predicate in a loop.
        """
        return Effect(EffectKind.CV_WAIT, self, (mutex,))

    def notify(self) -> Effect:
        """Wake the longest-waiting thread, if any."""
        return Effect(EffectKind.CV_NOTIFY, self)

    def broadcast(self) -> Effect:
        """Wake every waiting thread."""
        return Effect(EffectKind.CV_BROADCAST, self)

    def is_enabled(self, effect: Effect, thread: "ThreadState") -> bool:
        # The sentinel WAIT a parked thread holds is enabled only once
        # a notify has removed the thread from the waiter queue (the
        # engine rewrites the pending effect at that point), so a
        # still-parked thread is never enabled.
        if effect.kind is EffectKind.WAIT:
            return False
        return True

    def snapshot(self) -> Hashable:
        return ("condvar", tuple(tid for tid, _ in self.waiters))


class RWLock(SharedObject):
    """A reader-writer lock without writer preference.

    Any number of readers may hold the lock concurrently; a writer
    requires exclusivity.  Release infers the caller's role.
    """

    def __init__(self, world: "World", name: str) -> None:
        super().__init__(world, name)
        self.readers: List[Any] = []
        self.writer: Optional[Any] = None

    def acquire_read(self) -> Effect:
        """Block until no writer holds the lock, then enter shared."""
        return Effect(EffectKind.RW_ACQUIRE_READ, self)

    def acquire_write(self) -> Effect:
        """Block until the lock is completely free, then enter
        exclusive."""
        return Effect(EffectKind.RW_ACQUIRE_WRITE, self)

    def release(self) -> Effect:
        """Exit the lock in whichever role the caller holds."""
        return Effect(EffectKind.RW_RELEASE, self)

    def is_enabled(self, effect: Effect, thread: "ThreadState") -> bool:
        if effect.kind is EffectKind.RW_ACQUIRE_READ:
            return self.writer is None
        if effect.kind is EffectKind.RW_ACQUIRE_WRITE:
            return self.writer is None and not self.readers
        return True

    def apply(self, effect: Effect, thread: "ThreadState") -> Any:
        kind = effect.kind
        if kind is EffectKind.RW_ACQUIRE_READ:
            self.readers.append(thread.tid)
            return None
        if kind is EffectKind.RW_ACQUIRE_WRITE:
            self.writer = thread.tid
            return None
        if kind is EffectKind.RW_RELEASE:
            if self.writer == thread.tid:
                self.writer = None
            elif thread.tid in self.readers:
                self.readers.remove(thread.tid)
            else:
                raise BugSignal(
                    BugKind.LOCK_ERROR,
                    f"thread {thread.tid} released rwlock {self.name} "
                    "it does not hold",
                )
            return None
        return super().apply(effect, thread)

    def snapshot(self) -> Hashable:
        return ("rwlock", tuple(sorted(map(str, self.readers))), self.writer)


class Barrier:
    """A one-shot N-party barrier built from library primitives.

    Composite: ``wait`` is a generator to be used with ``yield from``.
    The last arriving thread releases the others through a semaphore.
    """

    def __init__(self, world: "World", name: str, parties: int) -> None:
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.parties = parties
        self._count = AtomicVar(world, f"{name}.count", 0)
        self._sem = Semaphore(world, f"{name}.sem", 0)

    def wait(self):
        """Arrive at the barrier; resumes once all parties arrived.

        Use as ``yield from barrier.wait()``.
        """
        arrived = yield self._count.add(1)
        if arrived == self.parties:
            if self.parties > 1:
                yield self._sem.release(self.parties - 1)
        else:
            yield self._sem.acquire()
