"""Process-stable hashing for state fingerprints.

State fingerprints are Python hashes that the service layer persists
into checkpoints and compares *across processes*: a resumed search
must recognise every state the killed process already visited, or it
double-counts them as new.  Pinning ``PYTHONHASHSEED`` makes string
hashing reproducible, but CPython before 3.12 *id*-hashes the
singletons ``None``, ``Ellipsis`` and ``NotImplemented`` -- their hash
derives from their memory address, which ASLR moves on every
interpreter start and no seed controls.  A fingerprint touching a bare
``hash(None)`` (an unheld mutex's ``holder``, a variable initialised
to ``None``, the ``None`` delivered into a generator after a write)
therefore differs between the saving and the resuming process.

:func:`stable_hash` is ``hash()`` with those singletons replaced by
string-derived constants, applied recursively through tuples and
frozensets (the only hashable containers the engine produces).  Equal
values keep equal hashes, so single-process behaviour is unchanged;
across processes the result depends only on ``PYTHONHASHSEED``, which
the checkpoint hash probe validates at load time.
"""

from __future__ import annotations

from typing import Any

__all__ = ["stable_hash"]


def stable_hash(value: Any) -> int:
    """``hash(value)``, deterministic across same-seed processes.

    Raises :class:`TypeError` for unhashable values, like ``hash``.
    """
    if value is None:
        return hash("repro:hash:none")
    if value is Ellipsis:
        return hash("repro:hash:ellipsis")
    if value is NotImplemented:
        return hash("repro:hash:notimplemented")
    if isinstance(value, tuple):
        return hash(tuple(stable_hash(item) for item in value))
    if isinstance(value, frozenset):
        return hash(frozenset(stable_hash(item) for item in value))
    return hash(value)
