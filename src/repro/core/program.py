"""Program definitions.

A :class:`Program` is a *recipe* for building one execution: a setup
function that, given a fresh :class:`~repro.core.world.World`, creates
all initial shared state and returns the initial threads.  Because the
recipe runs from scratch for every execution, the stateless checker can
replay any schedule deterministically.

Setup functions return either a mapping from thread label to thread
body (a generator function taking no arguments, typically a closure
over the shared objects) or an iterable of ``(label, body)`` or
``(label, body, args)`` tuples::

    def setup(w):
        counter = w.var("counter", 0)
        lock = w.mutex("lock")

        def incrementer():
            yield lock.acquire()
            v = yield counter.read()
            yield counter.write(v + 1)
            yield lock.release()

        return {"a": incrementer, "b": incrementer}

    program = Program("two-increments", setup)
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Iterable, List, Mapping, Tuple, Union

from ..errors import ProgramDefinitionError
from .world import World

ThreadBody = Callable[..., Any]
ThreadSpec = Tuple[str, ThreadBody, Tuple[Any, ...]]
SetupResult = Union[
    Mapping[str, ThreadBody],
    Iterable[Union[Tuple[str, ThreadBody], ThreadSpec]],
]


def _normalize_threads(result: SetupResult) -> List[ThreadSpec]:
    """Canonicalize a setup function's return value into specs."""
    specs: List[ThreadSpec] = []
    if isinstance(result, Mapping):
        items: Iterable[Any] = [(label, body) for label, body in result.items()]
    else:
        items = result
    for item in items:
        if not isinstance(item, tuple) or len(item) not in (2, 3):
            raise ProgramDefinitionError(
                "setup must return a mapping {label: body} or tuples "
                f"(label, body[, args]); got {item!r}"
            )
        label, body = item[0], item[1]
        args = tuple(item[2]) if len(item) == 3 else ()
        if not isinstance(label, str) or not label:
            raise ProgramDefinitionError(f"thread label must be a non-empty string, got {label!r}")
        if not callable(body):
            raise ProgramDefinitionError(f"thread body for {label!r} is not callable")
        specs.append((label, body, args))
    if not specs:
        raise ProgramDefinitionError("a program needs at least one thread")
    labels = [label for label, _, _ in specs]
    if len(set(labels)) != len(labels):
        raise ProgramDefinitionError(f"duplicate thread labels in {labels}")
    return specs


class Program:
    """A closed multithreaded program under test.

    Attributes:
        name: display name used in reports and experiment tables.
        setup: function ``World -> threads`` building fresh shared
            state and the initial threads.
        expected_bugs: optional documentation of the defects seeded in
            this program (used by the Table 2 experiment harness).
    """

    def __init__(
        self,
        name: str,
        setup: Callable[[World], SetupResult],
        expected_bugs: Tuple[str, ...] = (),
    ) -> None:
        if not callable(setup):
            raise ProgramDefinitionError("setup must be callable")
        self.name = name
        self.setup = setup
        self.expected_bugs = expected_bugs

    def instantiate(self) -> Tuple[World, List[ThreadSpec]]:
        """Build a fresh world and the initial thread specs."""
        world = World()
        result = self.setup(world)
        if inspect.isgenerator(result):
            raise ProgramDefinitionError(
                f"setup of {self.name!r} is a generator; it must be a plain "
                "function returning the initial threads"
            )
        return world, _normalize_threads(result)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Program {self.name!r}>"


def check(condition: Any, message: str = "assertion failed") -> None:
    """Assert a property inside a thread body.

    Raises :class:`~repro.errors.ProgramAssertionError`, which the
    engine converts into an ASSERTION bug report carrying the witness
    schedule and its preemption count.
    """
    from ..errors import ProgramAssertionError

    if not condition:
        raise ProgramAssertionError(message)
