"""The uniform state-space interface explored by search strategies.

Algorithm 1 of the paper is written against an abstract notion of
state with ``Execute`` and ``enabled``; this module defines that
interface (:class:`StateSpace`) and its stateless realization
(:class:`ProgramStateSpace`), where a "state" is simply the schedule
that reaches it and the underlying :class:`~repro.core.execution.Execution`
is replayed on demand -- exactly how the stateless CHESS model checker
revisits states.  The explicit-state ZING checker provides its own
realization in :mod:`repro.zing.checker`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Hashable, Optional, Tuple

from ..errors import BugReport
from .execution import Execution, ExecutionConfig, Schedule
from .program import Program
from .thread import ThreadId

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..analysis import ProgramAnalysis
    from ..obs.instrument import Instrumentation


class StateSpace(abc.ABC):
    """What a search strategy needs from a program's state space.

    States are opaque, immutable tokens.  ``execute`` never mutates its
    argument: it returns a new token, so strategies are free to revisit
    states in any order (breadth-first over preemption bounds in ICB,
    depth-first in DFS, uniformly at random in random walk).
    """

    @abc.abstractmethod
    def initial_state(self) -> object:
        """The unique initial state s0."""

    @abc.abstractmethod
    def enabled(self, state: object) -> Tuple[ThreadId, ...]:
        """The threads enabled in ``state``, in canonical order."""

    @abc.abstractmethod
    def execute(self, state: object, tid: ThreadId) -> object:
        """state.Execute(tid): run ``tid`` one step from ``state``."""

    @abc.abstractmethod
    def last_thread(self, state: object) -> Optional[ThreadId]:
        """L(alpha): the thread that executed the last step."""

    @abc.abstractmethod
    def preemptions(self, state: object) -> int:
        """NP(alpha): preempting context switches along this path."""

    @abc.abstractmethod
    def fingerprint(self, state: object) -> Hashable:
        """Canonical identity of ``state`` (for coverage and caching)."""

    @abc.abstractmethod
    def is_terminal(self, state: object) -> bool:
        """Whether no thread is enabled (or a bug failed the path)."""

    @abc.abstractmethod
    def bugs(self, state: object) -> Tuple[BugReport, ...]:
        """All bugs discovered along the path ending at ``state``."""

    def schedule_of(self, state: object) -> Schedule:
        """The scheduling choices reaching ``state`` (replay recipe).

        Optional; spaces that cannot reconstruct it return ``()``.
        """
        return ()

    def thread_count(self, state: object) -> Optional[int]:
        """Number of threads that exist at ``state`` (None if unknown)."""
        return None


class ProgramStateSpace(StateSpace):
    """Stateless (replay-based) state space of a :class:`Program`.

    A state is the tuple of scheduling choices reaching it.  The space
    keeps a single live :class:`Execution`; when a strategy asks about
    a state that is not an extension of the live execution, the program
    is re-executed from scratch under the state's schedule -- the
    paper's stateless exploration.  ``replays`` and ``replay_steps``
    expose the cost of this strategy for the ablation benchmarks.
    """

    def __init__(
        self,
        program: Program,
        config: Optional[ExecutionConfig] = None,
        obs: Optional["Instrumentation"] = None,
        analysis: Optional["ProgramAnalysis"] = None,
    ):
        self.program = program
        self.config = config or ExecutionConfig()
        self.obs = obs
        #: Optional static analysis backing :meth:`analysis_prunable`.
        self.analysis = analysis
        self._current: Optional[Execution] = None
        #: Number of fresh re-executions performed.
        self.replays = 0
        #: Total scheduling steps executed, including replayed ones.
        self.replay_steps = 0

    def attach_obs(self, obs: Optional["Instrumentation"]) -> None:
        """(Re)bind instrumentation; workers rebind per shard task."""
        self.obs = obs
        if self._current is not None:
            self._current.obs = obs

    # -- replay machinery ------------------------------------------------

    def _materialize(self, schedule: Schedule) -> Execution:
        """Return a live execution positioned exactly at ``schedule``."""
        current = self._current
        if current is not None and tuple(current.schedule) == schedule:
            return current
        if (
            current is not None
            and not current.finished
            and len(current.schedule) < len(schedule)
            and tuple(current.schedule) == schedule[: len(current.schedule)]
        ):
            for tid in schedule[len(current.schedule) :]:
                current.execute(tid)
                self.replay_steps += 1
            return current
        execution = Execution(self.program, self.config)
        execution.obs = self.obs
        self.replays += 1
        for tid in schedule:
            execution.execute(tid)
            self.replay_steps += 1
        self._current = execution
        return execution

    def execution_at(self, state: object) -> Execution:
        """The live execution for ``state`` (replaying if needed)."""
        return self._materialize(self._as_schedule(state))

    @staticmethod
    def _as_schedule(state: object) -> Schedule:
        assert isinstance(state, tuple)
        return state

    # -- StateSpace interface -----------------------------------------------

    def initial_state(self) -> Schedule:
        return ()

    def enabled(self, state: object) -> Tuple[ThreadId, ...]:
        obs = self.obs
        if obs is None:
            return self.execution_at(state).enabled_threads()
        # The "schedule" phase covers everything needed to answer a
        # scheduling query, including any stateless replay it forces.
        t0 = obs.hook_schedule.start()
        result = self.execution_at(state).enabled_threads()
        obs.hook_schedule.stop(t0)
        return result

    def execute(self, state: object, tid: ThreadId) -> Schedule:
        obs = self.obs
        if obs is None:
            execution = self.execution_at(state)
            execution.execute(tid)
            return tuple(execution.schedule)
        t0 = obs.hook_execute.start()
        execution = self.execution_at(state)
        execution.execute(tid)
        result = tuple(execution.schedule)
        obs.hook_execute.stop(t0)
        return result

    def last_thread(self, state: object) -> Optional[ThreadId]:
        schedule = self._as_schedule(state)
        return schedule[-1] if schedule else None

    def preemptions(self, state: object) -> int:
        return self.execution_at(state).preemptions

    def fingerprint(self, state: object) -> Hashable:
        obs = self.obs
        if obs is None:
            return self.execution_at(state).fingerprint()
        t0 = obs.hook_fingerprint.start()
        result = self.execution_at(state).fingerprint()
        obs.hook_fingerprint.stop(t0)
        return result

    def is_terminal(self, state: object) -> bool:
        return self.execution_at(state).finished

    def bugs(self, state: object) -> Tuple[BugReport, ...]:
        return tuple(self.execution_at(state).bugs)

    def schedule_of(self, state: object) -> Schedule:
        return self._as_schedule(state)

    def thread_count(self, state: object) -> Optional[int]:
        return len(self.execution_at(state).threads)

    # -- static-analysis reduction ----------------------------------------

    def analysis_prunable(self, state: object, tid: ThreadId) -> bool:
        """Whether preempting ``tid`` at ``state`` can be skipped.

        True when the attached :class:`~repro.analysis.ProgramAnalysis`
        proves that ``tid``'s next step is a data access to a variable
        no other thread instance can ever touch: every schedule that
        preempts here is equivalent to one that lets ``tid`` take the
        step first, so ICB need not defer those preemptions.

        Soundness guards (see ``docs/analysis.md``):

        * any TOP summary disables the reduction entirely
          (``analysis.reduction_enabled``);
        * under the ``SYNC_ONLY`` policy one scheduling step also
          performs the *following* data accesses, whose targets the
          pending effect does not reveal; skipping the preemption is
          then sound only relative to race detection (the paper's
          Theorem 2 argument), so fatal race detection must be on.
        """
        analysis = self.analysis
        if analysis is None or not analysis.reduction_enabled:
            return False
        from ..analysis.summary import PRUNABLE_KINDS
        from .execution import RaceDetection, SchedulingPolicy

        config = self.config
        if config.policy is not SchedulingPolicy.EVERY_ACCESS and not (
            config.race_detection is not RaceDetection.NONE
            and config.races_are_fatal
        ):
            return False
        effect = self.execution_at(state).pending_effect(tid)
        if effect is None or effect.kind not in PRUNABLE_KINDS:
            return False
        target = effect.target
        return target is not None and target.name in analysis.proven_local

    @property
    def supports_por(self) -> bool:
        """Whether pending footprints are exact (EVERY_ACCESS only)."""
        from .execution import SchedulingPolicy

        return self.config.policy is SchedulingPolicy.EVERY_ACCESS

    def pending_footprint(self, state: object, tid: ThreadId) -> frozenset:
        """The shared objects ``tid``'s next step will touch."""
        return self.execution_at(state).pending_footprint(tid)

    # -- statistics helpers ---------------------------------------------------

    def execution_stats(self, state: object) -> Tuple[int, int, int]:
        """(total accesses K, blocking steps B, preemptions c) at state.

        The quantities of Table 1 of the paper, measured on the
        execution reaching ``state``.
        """
        execution = self.execution_at(state)
        blocking = sum(t.blocking_steps for t in execution.threads.values())
        return execution.total_accesses, blocking, execution.preemptions
