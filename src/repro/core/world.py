"""The world: registry of all shared state in one execution.

A fresh :class:`World` is built for every execution by the program's
setup function, so replays always start from identical initial state --
the engine's determinism rests on this.  The world provides factory
methods for every kind of shared object and computes the shared-state
part of the execution's state fingerprint.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import ProgramDefinitionError
from .hashing import stable_hash
from .heap import HeapRef
from .objects import SharedObject
from .sync import (
    Barrier,
    CondVar,
    CriticalSection,
    Event,
    Mutex,
    RWLock,
    Semaphore,
)
from .variables import AtomicVar, SharedVar, make_array


class World:
    """Registry and factory for the shared state of one execution.

    Shared objects register themselves on construction; names must be
    unique because the state fingerprint keys object snapshots by name
    (names, unlike registration order, are canonical across equivalent
    executions even when threads allocate dynamically).
    """

    def __init__(self) -> None:
        self._objects: List[SharedObject] = []
        self._by_name: Dict[str, SharedObject] = {}

    # -- registration ---------------------------------------------------

    def _register(self, obj: SharedObject) -> int:
        if obj.name in self._by_name:
            raise ProgramDefinitionError(
                f"duplicate shared object name {obj.name!r}; shared object "
                "names must be unique within a program"
            )
        self._by_name[obj.name] = obj
        self._objects.append(obj)
        return len(self._objects) - 1

    @property
    def objects(self) -> List[SharedObject]:
        """All registered shared objects, in registration order."""
        return self._objects

    def find(self, name: str) -> SharedObject:
        """Look up a shared object by its unique name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ProgramDefinitionError(f"no shared object named {name!r}") from None

    # -- factories ------------------------------------------------------

    def var(self, name: str, initial: Any = None) -> SharedVar:
        """A plain shared data variable."""
        return SharedVar(self, name, initial)

    def atomic(self, name: str, initial: Any = 0) -> AtomicVar:
        """An atomic (synchronization) variable with interlocked ops."""
        return AtomicVar(self, name, initial)

    def array(self, name: str, values: list, atomic: bool = False):
        """A shared array: one variable per element."""
        return make_array(self, name, values, atomic=atomic)

    def mutex(self, name: str, guard: Optional[HeapRef] = None) -> Mutex:
        """A non-re-entrant lock."""
        return Mutex(self, name, guard=guard)

    def critical_section(
        self, name: str, guard: Optional[HeapRef] = None
    ) -> CriticalSection:
        """A re-entrant Win32-style critical section."""
        return CriticalSection(self, name, guard=guard)

    def event(
        self,
        name: str,
        initial: bool = False,
        auto_reset: bool = False,
        guard: Optional[HeapRef] = None,
    ) -> Event:
        """A Win32-style event."""
        return Event(self, name, initial=initial, auto_reset=auto_reset, guard=guard)

    def semaphore(
        self, name: str, initial: int = 0, maximum: Optional[int] = None
    ) -> Semaphore:
        """A counting semaphore."""
        return Semaphore(self, name, initial=initial, maximum=maximum)

    def condvar(self, name: str) -> CondVar:
        """A Mesa-style condition variable."""
        return CondVar(self, name)

    def rwlock(self, name: str) -> RWLock:
        """A reader-writer lock."""
        return RWLock(self, name)

    def barrier(self, name: str, parties: int) -> Barrier:
        """A one-shot N-party barrier (composite)."""
        return Barrier(self, name, parties)

    def alloc(self, name: str, **fields: Any) -> HeapRef:
        """A heap object allocated before the program starts."""
        return HeapRef(self, name, dict(fields))

    # -- fingerprinting ---------------------------------------------------

    def fingerprint(self) -> int:
        """Order-independent hash of all shared-object states.

        Snapshots are reduced with :func:`stable_hash` so fingerprints
        agree across processes under a pinned ``PYTHONHASHSEED``
        (``None`` inside a snapshot would otherwise id-hash).
        """
        return hash(
            frozenset((o.name, stable_hash(o.snapshot())) for o in self._objects)
        )
