"""A shared heap with lifetime checking.

Concurrent deallocation bugs -- freeing an object while another thread
still holds a live reference -- are a headline bug class in the paper
(the Dryad use-after-free of Figure 3 needs exactly one preemption).
This module provides heap objects whose every access is checked against
their lifetime:

* reading or writing a field of a freed object is a use-after-free;
* freeing a freed object is a double-free;
* operating on a synchronization object *embedded* in a freed heap
  object (via the ``guard`` parameter of :class:`~repro.core.sync.Mutex`
  and friends) is a use-after-free, modelling
  ``EnterCriticalSection(&freed->m_baseCS)``.

The allocation/free operations access the object's *header*, which is a
synchronization variable (a scheduling point); field accesses are data
accesses subject to race detection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Hashable

from ..errors import BugKind
from .effects import Effect, EffectKind
from .objects import BugSignal, SharedObject
from .variables import _require_hashable

if TYPE_CHECKING:  # pragma: no cover
    from .thread import ThreadState
    from .world import World


class HeapField(SharedObject):
    """One field of a heap object; a data variable with an owner."""

    is_sync = False

    def __init__(self, world: "World", owner: "HeapRef", field: str, initial: Any):
        super().__init__(world, f"{owner.name}.{field}")
        self.owner = owner
        self.field = field
        self.value = initial

    def apply(self, effect: Effect, thread: "ThreadState") -> Any:
        self.owner.check_alive(effect.kind.value, self.field)
        if effect.kind is EffectKind.HEAP_READ:
            return self.value
        if effect.kind is EffectKind.HEAP_WRITE:
            self.value = _require_hashable(effect.args[0], self.name)
            return None
        return super().apply(effect, thread)

    def snapshot(self) -> Hashable:
        return ("field", self.value)

    def is_write(self, effect: Effect) -> bool:
        """Whether ``effect`` modifies this field (for race checks)."""
        return effect.kind is EffectKind.HEAP_WRITE


class HeapRef(SharedObject):
    """A reference to a heap-allocated object with named fields.

    The header (this object) is a synchronization variable accessed by
    ``free``; fields are independent data variables accessed with
    :meth:`read` and :meth:`write`.
    """

    is_sync = True

    def __init__(self, world: "World", name: str, fields: Dict[str, Any]):
        super().__init__(world, name)
        self.freed = False
        self.fields: Dict[str, HeapField] = {
            field: HeapField(world, self, field, value)
            for field, value in fields.items()
        }

    # -- effect constructors -------------------------------------------

    def read(self, field: str) -> Effect:
        """Read a field; the yield result is its value."""
        return Effect(EffectKind.HEAP_READ, self._field(field))

    def write(self, field: str, value: Any) -> Effect:
        """Write ``value`` into a field."""
        return Effect(EffectKind.HEAP_WRITE, self._field(field), (value,))

    def free(self) -> Effect:
        """Deallocate the object.  Any later access is a bug."""
        return Effect(EffectKind.FREE, self)

    # -- semantics ----------------------------------------------------

    def _field(self, field: str) -> HeapField:
        try:
            return self.fields[field]
        except KeyError:
            raise BugSignal(
                BugKind.INVARIANT,
                f"unknown field {field!r} of heap object {self.name}",
            ) from None

    def check_alive(self, operation: str, where: str = "") -> None:
        """Raise a use-after-free bug signal if the object is freed."""
        if self.freed:
            suffix = f".{where}" if where else ""
            raise BugSignal(
                BugKind.USE_AFTER_FREE,
                f"{operation} on freed object {self.name}{suffix}",
            )

    def apply(self, effect: Effect, thread: "ThreadState") -> Any:
        if effect.kind is EffectKind.FREE:
            if self.freed:
                raise BugSignal(
                    BugKind.DOUBLE_FREE,
                    f"double free of heap object {self.name}",
                )
            self.freed = True
            return None
        return super().apply(effect, thread)

    def snapshot(self) -> Hashable:
        return ("heapref", self.freed)
