"""Core controlled-concurrency runtime.

This package implements the formal model of Section 2 of the paper: a
multithreaded program is a set of threads, each executing a sequence of
steps, where every step accesses exactly one shared variable and the
scheduler chooses the next thread at every scheduling point.

The pieces:

* :mod:`repro.core.effects` -- the vocabulary of operations a thread
  can perform on shared state.
* :mod:`repro.core.objects` -- shared-object base class and the
  :class:`~repro.core.world.World` registry.
* :mod:`repro.core.variables` -- data variables and atomic (sync)
  variables.
* :mod:`repro.core.sync` -- mutexes, critical sections, events,
  semaphores, condition variables, reader-writer locks, barriers.
* :mod:`repro.core.heap` -- a shared heap with use-after-free and
  double-free detection.
* :mod:`repro.core.thread` -- thread identities and per-thread state.
* :mod:`repro.core.program` -- program definitions (setup functions
  producing fresh worlds and thread bodies).
* :mod:`repro.core.execution` -- the deterministic execution engine:
  runs one schedule, computes enabled sets, counts preemptions, tracks
  happens-before clocks and state fingerprints.
* :mod:`repro.core.transition` -- the uniform state-space interface
  that all search strategies operate on, with a replay-based adapter
  for stateless (CHESS-style) exploration.
"""

from .effects import Effect, EffectKind
from .program import Program
from .world import World

__all__ = ["Effect", "EffectKind", "Program", "World"]
