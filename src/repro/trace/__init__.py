"""Persistent witness traces: save, replay, minimize, regress.

The trace subsystem turns an in-memory
:class:`~repro.errors.BugReport` into a durable artifact:

* :mod:`repro.trace.format` -- the versioned ``*.trace.json`` on-disk
  format with strict schema validation;
* :mod:`repro.trace.replay` -- deterministic replay with outcome
  classification (``REPRODUCED`` / ``BUG_CHANGED`` / ``VANISHED`` /
  ``SCHEDULE_MISMATCH``) and annotated explanations;
* :mod:`repro.trace.minimize` -- ddmin-style schedule shrinking that
  never increases steps or preemptions;
* :mod:`repro.trace.corpus` -- a directory of traces replayed as a
  regression suite.

See ``docs/trace.md`` for the format specification and workflows.
"""

from .corpus import CorpusEntry, CorpusReport, TraceCorpus, resolve_trace_program
from .format import (
    FORMAT_VERSION,
    ExpectedBug,
    ProgramFingerprint,
    TraceFormatError,
    TraceRecord,
)
from .minimize import MinimizationError, MinimizationResult, minimize_trace
from .replay import ReplayOutcome, ReplayReport, explain_trace, replay_trace

__all__ = [
    "CorpusEntry",
    "CorpusReport",
    "ExpectedBug",
    "FORMAT_VERSION",
    "MinimizationError",
    "MinimizationResult",
    "ProgramFingerprint",
    "ReplayOutcome",
    "ReplayReport",
    "TraceCorpus",
    "TraceFormatError",
    "TraceRecord",
    "explain_trace",
    "minimize_trace",
    "replay_trace",
    "resolve_trace_program",
]
