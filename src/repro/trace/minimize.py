"""ddmin-style shrinking of witness schedules.

The paper argues the witness with the fewest preemptions is the
simplest explanation of a concurrency bug; ICB already returns a
preemption-minimal witness *for the bound it stopped at*, but the
schedule can still carry irrelevant prefix work (threads that never
touch the buggy state) and context switches an exhaustive search kept
only because they were explored first.  The minimizer shrinks a saved
trace in two phases, re-validating every candidate by deterministic
replay (a candidate is kept only if the *same defect* -- the dedup
signature -- still fires):

1. **Preemption lowering** -- drop or merge the thread run started by
   each preempting context switch (the drop/merge moves of delta
   debugging applied to runs rather than steps);
2. **Prefix shortening** -- classic ddmin chunk removal over runs,
   then truncation at run boundaries, letting a preemption-free
   round-robin completion finish the execution (the paper's
   observation that any state can be driven to completion without
   further preemptions).

A candidate is adopted only when the engine-reported witness is no
worse on *both* axes (steps and preemptions) and strictly better on
one, so minimization can never increase either; the minimized trace's
expected bug identity follows the new witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.execution import Execution, ExecutionConfig
from ..core.program import Program
from ..core.thread import ThreadId
from ..errors import BugReport, ReproError
from .format import ExpectedBug, TraceRecord
from .replay import ReplayOutcome, replay_trace

#: One maximal same-thread block of a schedule.
Run = Tuple[ThreadId, int]


class MinimizationError(ReproError):
    """The trace to minimize does not reproduce its bug to begin with."""


def _to_runs(schedule: Sequence[ThreadId]) -> List[Run]:
    runs: List[Run] = []
    for tid in schedule:
        if runs and runs[-1][0] == tid:
            runs[-1] = (tid, runs[-1][1] + 1)
        else:
            runs.append((tid, 1))
    return runs


def _flatten(runs: Sequence[Run]) -> Tuple[ThreadId, ...]:
    out: List[ThreadId] = []
    for tid, count in runs:
        out.extend([tid] * count)
    return tuple(out)


def _attempt(
    program: Program,
    config: ExecutionConfig,
    prefix: Sequence[ThreadId],
    expected: ExpectedBug,
) -> Optional[BugReport]:
    """Replay a candidate prefix; return the matching bug or ``None``.

    The prefix is replayed strictly (an unknown or disabled thread
    disqualifies the candidate); if the execution is still running
    afterwards it is completed round-robin, which adds no preemptions
    -- this is what makes prefix truncation a sound shrinking move.
    The returned report is the *engine's* account of the shortened
    execution, so its schedule and preemption count are ground truth.
    """
    execution = Execution(program, config)
    for tid in prefix:
        if execution.finished:
            break
        if tid not in execution.threads or tid not in execution.enabled_threads():
            return None
        execution.execute(tid)
    if not execution.finished:
        execution.run_round_robin()
    for bug in execution.bugs:
        if expected.matches(bug):
            return bug
    return None


def _drop_and_merge_candidates(runs: Sequence[Run]) -> Iterator[List[Run]]:
    """Preemption-lowering moves: drop a run, or merge it backwards
    into the previous run of the same thread."""
    for r in range(len(runs) - 1, -1, -1):
        yield [run for i, run in enumerate(runs) if i != r]
    for r in range(len(runs) - 1, 0, -1):
        tid = runs[r][0]
        for p in range(r - 1, -1, -1):
            if runs[p][0] == tid:
                merged = list(runs)
                moved = merged.pop(r)
                merged[p] = (tid, merged[p][1] + moved[1])
                yield merged
                break


def _ddmin_candidates(runs: Sequence[Run]) -> Iterator[List[Run]]:
    """Classic ddmin over runs: remove chunks of halving size."""
    n = len(runs)
    chunk = n // 2
    while chunk >= 1:
        for start in range(0, n, chunk):
            yield list(runs[:start]) + list(runs[start + chunk:])
        chunk //= 2


def _truncation_candidates(runs: Sequence[Run]) -> Iterator[List[Run]]:
    """Prefix shortening: keep only the first ``k`` runs."""
    for k in range(1, len(runs)):
        yield list(runs[:k])


@dataclass
class MinimizationResult:
    """Original vs. minimized witness sizes, plus the new trace."""

    trace: TraceRecord
    original_steps: int
    original_preemptions: int
    steps: int
    preemptions: int
    candidates_tried: int
    rounds: int

    @property
    def improved(self) -> bool:
        return (self.steps, self.preemptions) != (
            self.original_steps,
            self.original_preemptions,
        )

    def summary(self) -> str:
        return (
            f"minimized {self.trace.program.name} [{self.trace.bug.kind}]: "
            f"{self.original_steps} steps / {self.original_preemptions} preemption(s) "
            f"-> {self.steps} steps / {self.preemptions} preemption(s) "
            f"({self.candidates_tried} candidate(s), {self.rounds} round(s))"
        )


def minimize_trace(
    trace: TraceRecord,
    program: Program,
    config: Optional[ExecutionConfig] = None,
    max_candidates: int = 5000,
) -> MinimizationResult:
    """Shrink ``trace`` while preserving reproduction of its defect.

    Raises :class:`MinimizationError` when the input trace does not
    replay as ``REPRODUCED`` in the first place (there is nothing
    meaningful to preserve).  ``max_candidates`` bounds the total
    number of validation replays across all rounds.
    """
    config = config or trace.config
    initial = replay_trace(trace, program, config=config)
    if initial.outcome is not ReplayOutcome.REPRODUCED:
        raise MinimizationError(
            f"trace does not reproduce its bug (classified {initial.outcome}); "
            "refusing to minimize a stale witness"
        )

    expected = trace.bug
    best = initial.bug
    assert best is not None
    tried = 0
    rounds = 0

    def better(candidate: BugReport) -> bool:
        return (
            candidate.preemptions <= best.preemptions
            and len(candidate.schedule) <= len(best.schedule)
            and (
                candidate.preemptions < best.preemptions
                or len(candidate.schedule) < len(best.schedule)
            )
        )

    phases = (_drop_and_merge_candidates, _ddmin_candidates, _truncation_candidates)
    for phase in phases:
        improved = True
        while improved and tried < max_candidates:
            improved = False
            rounds += 1
            runs = _to_runs(best.schedule)
            if len(runs) <= 1:
                break
            for candidate_runs in phase(runs):
                if tried >= max_candidates:
                    break
                tried += 1
                candidate = _attempt(program, config, _flatten(candidate_runs), expected)
                if candidate is not None and better(candidate):
                    best = candidate
                    improved = True
                    break

    minimized = trace.with_witness(best, minimized=True)
    return MinimizationResult(
        trace=minimized,
        original_steps=len(trace.schedule),
        original_preemptions=trace.preemptions,
        steps=len(best.schedule),
        preemptions=best.preemptions,
        candidates_tried=tried,
        rounds=rounds,
    )
