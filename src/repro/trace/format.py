"""The persistent witness-trace format (``*.trace.json``).

A trace is the durable form of a :class:`~repro.errors.BugReport`: it
captures everything needed to re-execute the witness in a different
process, on a different machine, or weeks later -- the program's
fingerprint (display name plus a hash of its initial thread structure),
the :class:`~repro.core.execution.ExecutionConfig` knobs the bug was
found under, the witness schedule itself, its preemption count, and
the identity of the bug the schedule is expected to reproduce.

The on-disk representation is versioned JSON.  Thread identities are
stored *losslessly*: a table of distinct ``(path, label)`` pairs plus
a schedule of indices into that table, rebuilt on load through
:meth:`~repro.core.thread.ThreadId.from_path` (the dotted string
rendering used by reports is display-only and one-way).  Loading
validates the schema strictly -- a malformed or truncated trace raises
:class:`TraceFormatError` with the offending key, never a bare
``KeyError``/``TypeError`` from deep inside the replay machinery.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.execution import ExecutionConfig, RaceDetection, SchedulingPolicy
from ..core.program import Program
from ..core.thread import ThreadId
from ..errors import BugKind, BugReport, ReproError

#: Identifies a file as one of ours regardless of extension.
FORMAT_NAME = "repro-trace"
#: Bumped on every incompatible schema change; loaders reject unknown
#: versions instead of guessing.
FORMAT_VERSION = 1
#: Canonical file suffix; the corpus only picks up files ending in it.
TRACE_SUFFIX = ".trace.json"


class TraceFormatError(ReproError):
    """A trace file violates the schema (or uses an unknown version)."""


def _require(data: Dict[str, Any], key: str, kind: type, where: str) -> Any:
    if key not in data:
        raise TraceFormatError(f"{where}: missing required key {key!r}")
    value = data[key]
    if not isinstance(value, kind) or isinstance(value, bool) and kind is int:
        raise TraceFormatError(
            f"{where}: key {key!r} must be {kind.__name__}, got {type(value).__name__}"
        )
    return value


def _path_tuple(value: Any, where: str) -> Tuple[int, ...]:
    if not isinstance(value, (list, tuple)) or not value:
        raise TraceFormatError(f"{where}: thread path must be a non-empty list")
    try:
        return ThreadId.from_path(value).path
    except ValueError as exc:
        raise TraceFormatError(f"{where}: {exc}") from exc


@dataclass(frozen=True)
class ProgramFingerprint:
    """Identifies which program a trace belongs to.

    ``structure`` hashes the initial thread structure (the ordered
    labels the setup function declares), so replaying a trace against
    a program whose thread layout changed is detected before a single
    step runs, independently of the display name.
    """

    name: str
    structure: str

    @classmethod
    def of(cls, program: Program) -> "ProgramFingerprint":
        _, specs = program.instantiate()
        payload = json.dumps([label for label, _, _ in specs], ensure_ascii=True)
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
        return cls(name=program.name, structure=digest)


@dataclass(frozen=True)
class ExpectedBug:
    """The bug identity a trace's schedule is expected to reproduce."""

    kind: BugKind
    message: str
    #: Path of the triggering thread (``None`` for whole-program
    #: conditions such as deadlock).
    thread: Optional[Tuple[int, ...]]
    step_index: int

    @classmethod
    def of(cls, bug: BugReport) -> "ExpectedBug":
        return cls(
            kind=bug.kind,
            message=bug.message,
            thread=bug.thread.path if bug.thread is not None else None,
            step_index=bug.step_index,
        )

    def matches(self, bug: BugReport) -> bool:
        """Same defect (the dedup signature), any witness."""
        thread_path = bug.thread.path if bug.thread is not None else None
        return (
            bug.kind is self.kind
            and bug.message == self.message
            and thread_path == self.thread
        )


#: ExecutionConfig fields persisted in a trace.  ``monitors`` is
#: deliberately absent: monitor factories are code, not data; replay
#: uses whatever monitors the caller's config supplies.
_CONFIG_SCALARS = (
    "strict_races",
    "races_are_fatal",
    "deadlock_is_bug",
    "max_accesses_per_step",
    "free_conflicts",
)


def config_to_json(config: ExecutionConfig) -> Dict[str, Any]:
    """Serialize the replay-relevant knobs of an execution config."""
    data: Dict[str, Any] = {
        "policy": config.policy.value,
        "race_detection": config.race_detection.value,
    }
    for name in _CONFIG_SCALARS:
        data[name] = getattr(config, name)
    return data


def config_from_json(data: Dict[str, Any]) -> ExecutionConfig:
    """Rebuild an execution config saved by :func:`config_to_json`."""
    where = "config"
    try:
        policy = SchedulingPolicy(_require(data, "policy", str, where))
        race_detection = RaceDetection(_require(data, "race_detection", str, where))
    except ValueError as exc:
        raise TraceFormatError(f"{where}: {exc}") from exc
    kwargs: Dict[str, Any] = {}
    for name in _CONFIG_SCALARS:
        expected = int if name == "max_accesses_per_step" else bool
        kwargs[name] = _require(data, name, expected, where)
    return ExecutionConfig(policy=policy, race_detection=race_detection, **kwargs)


@dataclass(frozen=True)
class TraceRecord:
    """One persisted witness: program + config + schedule + expected bug.

    Immutable; minimization produces a *new* record via
    :meth:`with_witness`.  ``spec`` optionally records how to rebuild
    the program (a CLI spec such as ``wsq:pop-race`` or
    ``package.module:factory``) so a corpus can re-resolve it; traces
    saved through the Python API may leave it unset, in which case the
    corpus falls back to matching the fingerprint's display name
    against the built-in registry.
    """

    program: ProgramFingerprint
    config: ExecutionConfig
    schedule: Tuple[ThreadId, ...]
    preemptions: int
    bug: ExpectedBug
    spec: Optional[str] = None
    minimized: bool = False

    # -- construction -------------------------------------------------------

    @classmethod
    def from_bug(
        cls,
        program: Program,
        config: Optional[ExecutionConfig],
        bug: BugReport,
        spec: Optional[str] = None,
        minimized: bool = False,
    ) -> "TraceRecord":
        """Capture a found bug as a durable trace."""
        return cls(
            program=ProgramFingerprint.of(program),
            config=config or ExecutionConfig(),
            schedule=tuple(bug.schedule),
            preemptions=bug.preemptions,
            bug=ExpectedBug.of(bug),
            spec=spec,
            minimized=minimized,
        )

    def with_witness(self, bug: BugReport, minimized: bool = True) -> "TraceRecord":
        """A copy carrying a different (e.g. minimized) witness of the
        same defect; the expected identity follows the new schedule."""
        return dataclasses.replace(
            self,
            schedule=tuple(bug.schedule),
            preemptions=bug.preemptions,
            bug=ExpectedBug.of(bug),
            minimized=minimized,
        )

    # -- identity -----------------------------------------------------------

    @property
    def identity(self) -> Tuple[Any, ...]:
        """Mirrors :attr:`repro.errors.BugReport.identity` for the
        expected bug, so round-trip tests can compare them directly."""
        return (self.bug.kind, tuple(t.path for t in self.schedule))

    def digest(self) -> str:
        """Stable content hash of the witness; used in filenames, so
        re-saving the same bug overwrites rather than duplicates."""
        payload = json.dumps(
            [self.program.name, self.bug.kind.value, [list(t.path) for t in self.schedule]]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:10]

    def default_filename(self) -> str:
        safe = re.sub(r"[^A-Za-z0-9._-]+", "-", self.program.name)
        return f"{safe}-{self.bug.kind.value}-{self.digest()}{TRACE_SUFFIX}"

    # -- serialization ------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        threads: List[ThreadId] = []
        index: Dict[ThreadId, int] = {}
        for tid in self.schedule:
            if tid not in index:
                index[tid] = len(threads)
                threads.append(tid)
        return {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "program": {"name": self.program.name, "structure": self.program.structure},
            "config": config_to_json(self.config),
            "threads": [
                {"path": list(tid.path), "label": tid.label} for tid in threads
            ],
            "schedule": [index[tid] for tid in self.schedule],
            "preemptions": self.preemptions,
            "bug": {
                "kind": self.bug.kind.value,
                "message": self.bug.message,
                "thread": list(self.bug.thread) if self.bug.thread is not None else None,
                "step_index": self.bug.step_index,
            },
            "spec": self.spec,
            "minimized": self.minimized,
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the trace to ``path`` (a file, or a directory in which
        the :meth:`default_filename` is used)."""
        target = pathlib.Path(path)
        if target.is_dir():
            target = target / self.default_filename()
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.dumps() + "\n")
        return target

    @classmethod
    def from_json(cls, data: Any) -> "TraceRecord":
        if not isinstance(data, dict):
            raise TraceFormatError(f"trace must be a JSON object, got {type(data).__name__}")
        where = "trace"
        fmt = _require(data, "format", str, where)
        if fmt != FORMAT_NAME:
            raise TraceFormatError(f"not a {FORMAT_NAME} file (format={fmt!r})")
        version = _require(data, "version", int, where)
        if version != FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace version {version} (this build reads {FORMAT_VERSION})"
            )
        prog = _require(data, "program", dict, where)
        fingerprint = ProgramFingerprint(
            name=_require(prog, "name", str, "program"),
            structure=_require(prog, "structure", str, "program"),
        )
        config = config_from_json(_require(data, "config", dict, where))

        threads_raw = _require(data, "threads", list, where)
        threads: List[ThreadId] = []
        for i, entry in enumerate(threads_raw):
            if not isinstance(entry, dict):
                raise TraceFormatError(f"threads[{i}]: must be an object")
            path = _path_tuple(entry.get("path"), f"threads[{i}]")
            label = entry.get("label", "")
            if not isinstance(label, str):
                raise TraceFormatError(f"threads[{i}]: label must be a string")
            threads.append(ThreadId.from_path(path, label))

        schedule_raw = _require(data, "schedule", list, where)
        schedule: List[ThreadId] = []
        for i, idx in enumerate(schedule_raw):
            if not isinstance(idx, int) or isinstance(idx, bool) or not (
                0 <= idx < len(threads)
            ):
                raise TraceFormatError(
                    f"schedule[{i}]: index {idx!r} out of range for {len(threads)} thread(s)"
                )
            schedule.append(threads[idx])

        preemptions = _require(data, "preemptions", int, where)
        if preemptions < 0:
            raise TraceFormatError("preemptions must be non-negative")

        bug_raw = _require(data, "bug", dict, where)
        try:
            kind = BugKind(_require(bug_raw, "kind", str, "bug"))
        except ValueError as exc:
            raise TraceFormatError(f"bug: {exc}") from exc
        thread_raw = bug_raw.get("thread")
        thread = _path_tuple(thread_raw, "bug.thread") if thread_raw is not None else None
        bug = ExpectedBug(
            kind=kind,
            message=_require(bug_raw, "message", str, "bug"),
            thread=thread,
            step_index=_require(bug_raw, "step_index", int, "bug"),
        )

        spec = data.get("spec")
        if spec is not None and not isinstance(spec, str):
            raise TraceFormatError("spec must be a string or null")
        minimized = data.get("minimized", False)
        if not isinstance(minimized, bool):
            raise TraceFormatError("minimized must be a boolean")

        return cls(
            program=fingerprint,
            config=config,
            schedule=tuple(schedule),
            preemptions=preemptions,
            bug=bug,
            spec=spec,
            minimized=minimized,
        )

    @classmethod
    def loads(cls, text: str) -> "TraceRecord":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"trace is not valid JSON: {exc}") from exc
        return cls.from_json(data)

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "TraceRecord":
        source = pathlib.Path(path)
        try:
            text = source.read_text()
        except OSError as exc:
            raise TraceFormatError(f"cannot read trace {source}: {exc}") from exc
        return cls.loads(text)

    # -- reporting ----------------------------------------------------------

    def summary(self) -> str:
        tag = " (minimized)" if self.minimized else ""
        return (
            f"trace of {self.program.name}{tag}: [{self.bug.kind}] "
            f"{self.bug.message} -- {len(self.schedule)} step(s), "
            f"{self.preemptions} preemption(s)"
        )


def sequence_to_schedule(paths: Sequence[Sequence[int]]) -> Tuple[ThreadId, ...]:
    """Convenience for tests: build a schedule from raw path tuples."""
    return tuple(ThreadId.from_path(p) for p in paths)
