"""A directory of witness traces as a regression corpus.

The workflow the paper's Section 1 promises -- "the tester can debug
by replaying the execution" -- becomes a CI loop: every bug a checking
run finds is saved under a corpus directory (``check(trace_dir=...)``
or ``--trace-dir``), and ``corpus run`` replays every stored trace,
failing on any outcome other than ``REPRODUCED``.  A fixed bug shows
up as ``VANISHED`` (delete the trace and celebrate); a refactor that
silently changed the defect shows up as ``BUG_CHANGED`` or a
``SCHEDULE_MISMATCH`` flavor instead of a green build.

Programs are re-resolved from each trace's recorded ``spec`` (a CLI
spec such as ``wsq:pop-race`` or ``package.module:factory``), falling
back to matching the recorded display name against the built-in
registry; a custom ``resolve`` callable overrides both.
"""

from __future__ import annotations

import importlib
import pathlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from ..core.execution import ExecutionConfig
from ..core.program import Program
from ..errors import ReproError
from .format import TRACE_SUFFIX, TraceFormatError, TraceRecord
from .replay import ReplayOutcome, ReplayReport, replay_trace

Resolver = Callable[[TraceRecord], Program]


def resolve_trace_program(trace: TraceRecord) -> Program:
    """Default resolver: recorded spec first, then built-in name match.

    Raises :class:`~repro.errors.ReproError` when nothing matches; the
    corpus runner converts that into a per-trace failure rather than
    aborting the whole run.
    """
    from ..programs import find_builtin_by_name, resolve_builtin

    if trace.spec is not None:
        program = resolve_builtin(trace.spec)
        if program is not None:
            return program
        if ":" in trace.spec and "." in trace.spec.split(":", 1)[0]:
            module_name, factory_name = trace.spec.split(":", 1)
            try:
                module = importlib.import_module(module_name)
                factory = getattr(module, factory_name)
                program = factory()
            except Exception as exc:
                raise ReproError(
                    f"cannot rebuild program from spec {trace.spec!r}: {exc}"
                ) from exc
            if isinstance(program, Program):
                return program
            raise ReproError(f"spec {trace.spec!r} did not produce a Program")
    program = find_builtin_by_name(trace.program.name)
    if program is not None:
        return program
    raise ReproError(
        f"cannot resolve program for trace of {trace.program.name!r}; "
        "no spec recorded and no built-in has that name"
    )


@dataclass
class CorpusEntry:
    """One trace's fate in a corpus run."""

    path: pathlib.Path
    trace: Optional[TraceRecord] = None
    report: Optional[ReplayReport] = None
    #: Load/resolve failure, when the trace never reached replay.
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.report is not None and self.report.reproduced

    def describe(self) -> str:
        if self.error is not None:
            return f"ERROR      {self.path.name}: {self.error}"
        assert self.report is not None
        status = str(self.report.outcome).upper().replace("-", "_")
        detail = ""
        if self.report.mismatch is not None:
            detail = f" ({self.report.mismatch.describe()})"
        elif (
            self.report.outcome is ReplayOutcome.BUG_CHANGED
            and self.report.bug is not None
        ):
            detail = f" (observed {self.report.bug})"
        return f"{status:<10} {self.path.name}{detail}"


@dataclass
class CorpusReport:
    """Aggregate outcome of replaying a whole corpus."""

    root: pathlib.Path
    entries: List[CorpusEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.entries)

    @property
    def failures(self) -> List[CorpusEntry]:
        return [entry for entry in self.entries if not entry.ok]

    def summary(self) -> str:
        lines = [
            f"corpus {self.root}: {len(self.entries)} trace(s), "
            f"{len(self.failures)} failure(s)"
        ]
        lines.extend(entry.describe() for entry in self.entries)
        return "\n".join(lines)


class TraceCorpus:
    """Save, enumerate and re-run witness traces under one directory."""

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)

    # -- writing ------------------------------------------------------------

    def save(self, trace: TraceRecord) -> pathlib.Path:
        """Persist a trace under its content-addressed default name.

        The filename is derived from the witness identity, so saving
        the same bug twice (e.g. re-streamed after a worker retry, or
        found again by a later run) overwrites instead of duplicating.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        return trace.save(self.root / trace.default_filename())

    # -- reading ------------------------------------------------------------

    def paths(self) -> List[pathlib.Path]:
        """Every trace file in the corpus, in deterministic order."""
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.iterdir() if p.name.endswith(TRACE_SUFFIX))

    def load_all(self) -> List[TraceRecord]:
        """Load every trace, raising on the first malformed file."""
        return [TraceRecord.load(path) for path in self.paths()]

    def matching(self, program: Program) -> List[tuple]:
        """``(path, trace)`` pairs recorded for ``program``.

        Matches on the full :class:`~repro.trace.format.ProgramFingerprint`
        (display name plus thread-structure hash), so a same-named
        program whose thread layout changed is not offered for replay.
        Malformed trace files are skipped -- callers use this as an
        opportunistic fast path (see
        :meth:`repro.service.cache.ResultCache.corpus_fastpath`), not
        as validation.
        """
        from .format import ProgramFingerprint

        wanted = ProgramFingerprint.of(program)
        found: List[tuple] = []
        for path in self.paths():
            try:
                trace = TraceRecord.load(path)
            except TraceFormatError:
                continue
            if trace.program == wanted:
                found.append((path, trace))
        return found

    def __len__(self) -> int:
        return len(self.paths())

    # -- running ------------------------------------------------------------

    def run(
        self,
        resolve: Optional[Resolver] = None,
        config: Optional[ExecutionConfig] = None,
    ) -> CorpusReport:
        """Replay every stored trace; any non-``REPRODUCED`` outcome
        (or unloadable/unresolvable trace) is a failure.

        ``config`` overrides every trace's recorded config (rarely
        wanted); ``resolve`` overrides program resolution.
        """
        resolve = resolve or resolve_trace_program
        report = CorpusReport(root=self.root)
        for path in self.paths():
            entry = CorpusEntry(path=path)
            report.entries.append(entry)
            try:
                entry.trace = TraceRecord.load(path)
            except TraceFormatError as exc:
                entry.error = str(exc)
                continue
            try:
                program = resolve(entry.trace)
            except ReproError as exc:
                entry.error = str(exc)
                continue
            entry.report = replay_trace(entry.trace, program, config=config)
        return report
