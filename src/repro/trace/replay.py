"""Deterministic replay of persisted witness traces.

Replaying a trace re-executes its schedule step by step against a
fresh :class:`~repro.core.execution.Execution` and classifies what
happened:

* ``REPRODUCED`` -- the expected bug fired with the identical witness
  (same :attr:`~repro.errors.BugReport.identity`);
* ``BUG_CHANGED`` -- a bug fired, but a different defect than the
  trace recorded (or the same defect with a diverged witness);
* ``VANISHED`` -- the schedule replayed cleanly but no bug fired: the
  defect is fixed (or no longer reachable on this witness);
* ``SCHEDULE_MISMATCH`` -- the program no longer agrees with the
  recording (structure changed, a scheduled thread is missing or not
  enabled, the program ends early); the
  :class:`~repro.errors.ScheduleMismatch` carries the flavor.

Every divergence is *classified*, never an uncaught engine error: a
stale trace against a mutated program is an expected triage situation,
not a crash.  Pass ``strict=True`` to raise the mismatch instead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..core.execution import Execution, ExecutionConfig
from ..core.program import Program
from ..errors import BugReport, ScheduleMismatch
from .format import ProgramFingerprint, TraceRecord


class ReplayOutcome(enum.Enum):
    """Classification of one trace replay."""

    REPRODUCED = "reproduced"
    BUG_CHANGED = "bug-changed"
    VANISHED = "vanished"
    SCHEDULE_MISMATCH = "schedule-mismatch"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class ReplayReport:
    """Outcome of replaying one trace, with the replayed execution."""

    outcome: ReplayOutcome
    trace: TraceRecord
    #: The bug the replay actually produced, if any.
    bug: Optional[BugReport] = None
    #: Populated iff ``outcome`` is ``SCHEDULE_MISMATCH``.
    mismatch: Optional[ScheduleMismatch] = None
    #: The replayed execution (absent for pre-replay mismatches such
    #: as a fingerprint change).
    execution: Optional[Execution] = None
    #: How many schedule steps replayed before stopping.
    steps_replayed: int = 0

    @property
    def reproduced(self) -> bool:
        return self.outcome is ReplayOutcome.REPRODUCED

    def describe(self) -> str:
        """One-paragraph human-readable classification."""
        lines = [f"replay: {self.outcome}", f"  {self.trace.summary()}"]
        if self.mismatch is not None:
            lines.append(f"  {self.mismatch.describe()}")
        if self.outcome is ReplayOutcome.BUG_CHANGED and self.bug is not None:
            lines.append(f"  observed instead: {self.bug}")
        if self.outcome is ReplayOutcome.VANISHED:
            lines.append(
                f"  schedule replayed all {self.steps_replayed} step(s) without a bug"
            )
        return "\n".join(lines)

    def explain(self) -> str:
        """The annotated step-by-step trace (preempting steps ``*``).

        The same rendering :meth:`repro.chess.ChessChecker.explain`
        produces, but driven from the persisted schedule, so it works
        on any saved trace -- including one streamed out of a parallel
        worker in another process.
        """
        parts = [self.describe()]
        if self.bug is not None:
            parts.append(self.bug.describe())
        if self.execution is not None:
            parts.append("trace (preempting steps marked *):")
            parts.append(self.execution.describe_trace())
        return "\n".join(parts)


def replay_trace(
    trace: TraceRecord,
    program: Program,
    config: Optional[ExecutionConfig] = None,
    check_fingerprint: bool = True,
    strict: bool = False,
) -> ReplayReport:
    """Replay ``trace`` against ``program`` and classify the outcome.

    ``config`` overrides the trace's recorded execution config (e.g.
    to attach monitors, which are code and therefore not persisted);
    by default the recorded config is rebuilt, so a race bug found
    under vector clocks replays under vector clocks.

    With ``strict`` a divergence raises the
    :class:`~repro.errors.ScheduleMismatch` instead of returning a
    ``SCHEDULE_MISMATCH`` report.
    """
    if check_fingerprint:
        actual = ProgramFingerprint.of(program)
        if actual.structure != trace.program.structure:
            mismatch = ScheduleMismatch(
                "fingerprint",
                f"program structure changed: trace was recorded against "
                f"{trace.program.name!r} (structure {trace.program.structure}), "
                f"got {actual.name!r} (structure {actual.structure})",
            )
            if strict:
                raise mismatch
            return ReplayReport(ReplayOutcome.SCHEDULE_MISMATCH, trace, mismatch=mismatch)

    execution = Execution(program, config or trace.config)
    steps = 0
    for index, tid in enumerate(trace.schedule):
        if execution.finished:
            if execution.failed:
                break  # A bug fired earlier than recorded; classify below.
            mismatch = ScheduleMismatch(
                "early-termination",
                f"program terminated after {steps} step(s) but the schedule "
                f"has {len(trace.schedule)}",
                step_index=index,
                scheduled=tid.path,
            )
            if strict:
                raise mismatch
            return ReplayReport(
                ReplayOutcome.SCHEDULE_MISMATCH,
                trace,
                mismatch=mismatch,
                execution=execution,
                steps_replayed=steps,
            )
        if tid not in execution.threads:
            mismatch = ScheduleMismatch(
                "unknown-thread",
                f"schedule step {index} runs thread {tid} which the program "
                "never created",
                step_index=index,
                scheduled=tid.path,
                enabled=tuple(t.path for t in execution.enabled_threads()),
            )
            if strict:
                raise mismatch
            return ReplayReport(
                ReplayOutcome.SCHEDULE_MISMATCH,
                trace,
                mismatch=mismatch,
                execution=execution,
                steps_replayed=steps,
            )
        enabled = execution.enabled_threads()
        if tid not in enabled:
            mismatch = ScheduleMismatch(
                "not-enabled",
                f"schedule step {index} runs thread {tid}, which is not "
                f"enabled here (enabled: {', '.join(map(str, enabled)) or 'none'})",
                step_index=index,
                scheduled=tid.path,
                enabled=tuple(t.path for t in enabled),
            )
            if strict:
                raise mismatch
            return ReplayReport(
                ReplayOutcome.SCHEDULE_MISMATCH,
                trace,
                mismatch=mismatch,
                execution=execution,
                steps_replayed=steps,
            )
        execution.execute(tid)
        steps += 1

    return _classify(trace, execution, steps)


def _classify(trace: TraceRecord, execution: Execution, steps: int) -> ReplayReport:
    """Compare what the replay produced against the expected bug."""
    same_defect = next(
        (bug for bug in execution.bugs if trace.bug.matches(bug)), None
    )
    if same_defect is not None:
        if same_defect.identity == trace.identity:
            outcome = ReplayOutcome.REPRODUCED
        else:
            # Same defect, diverged witness (it fired at a different
            # point than the recording) -- the bug moved under us.
            outcome = ReplayOutcome.BUG_CHANGED
        return ReplayReport(
            outcome, trace, bug=same_defect, execution=execution, steps_replayed=steps
        )
    if execution.bugs:
        return ReplayReport(
            ReplayOutcome.BUG_CHANGED,
            trace,
            bug=execution.bugs[0],
            execution=execution,
            steps_replayed=steps,
        )
    return ReplayReport(
        ReplayOutcome.VANISHED, trace, execution=execution, steps_replayed=steps
    )


def explain_trace(
    trace: TraceRecord,
    program: Program,
    config: Optional[ExecutionConfig] = None,
) -> str:
    """Replay and render the annotated explanation in one call."""
    return replay_trace(trace, program, config=config).explain()
