"""Static summaries for in-vivo programs: real code, same facts.

The DSL analyzer in :mod:`repro.analysis.summary` interprets generator
bodies where every effect is a ``yield`` -- anything else is plain
Python and provably effect-free.  In-vivo thread bodies
(:mod:`repro.invivo`) are ordinary callables whose effects hide inside
*method calls* on adapter objects (``lock.acquire()``,
``shared.set(...)``, ``with cond: cond.wait()``), so the base
interpreter's "an unresolved call is harmless" rule is unsound there.

:class:`_InvivoInterpreter` subclasses the DSL interpreter and inverts
that rule:

* attribute access on an adapter resolves to an :class:`_AdapterMethod`
  marker (or, for ``.value``, records the read immediately);
* calling a marker applies the same :class:`_StaticEffect` sequences the
  adapter's runtime methods perform (``Condition.wait`` expands to
  ``CV_WAIT`` + ``RELEASE`` + re-``ACQUIRE`` of the backing mutex,
  mirroring the engine's wait protocol);
* ``with`` statements are interpreted natively, releasing on the
  fall-through, ``return``, ``break`` and ``continue`` paths;
* *every* call of an unresolved or opaque callee degrades the thread to
  TOP -- real code may hide adapter operations anywhere -- as do
  generator constructs, ``try``, dynamic attribute targets, and
  callable-valued arguments smuggled into builtins.

On the same pass the interpreter collects the **hidden-state** facts the
lint in :mod:`repro.analysis.lint` reports: plain attributes and module
globals written by a checked thread (``hidden_writes``) and the
attribute/global values the analysis constant-folded (``resolved_attrs``).
A post-pass degrades any thread whose folded values another thread
mutates, so stale folds can never produce an unsound summary.

Soundness contract: identical to the DSL analyzer's -- for every
non-TOP thread, the dynamic accesses in any execution are contained in
``summary.accesses`` -- with one documented carve-out (see
``docs/analysis.md``): effects smuggled through user-defined dunder
methods invoked implicitly (``__bool__``, ``__iter__``, ``__eq__``...)
on objects the analysis holds concretely.  Adapter operations written
as plain statements and calls, the only idiom the runtime supports
well, are covered exactly.
"""

from __future__ import annotations

import ast
import inspect
import types
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from ..core.effects import EffectKind
from ..core.objects import SharedObject
from ..core.program import check as _check_fn
from ..core.sync import Barrier
from ..core.sync import Event as _CoreEvent
from ..invivo import adapters as _ad
from ..invivo.program import InvivoProgram
from .summary import (
    _SAFE_BUILTINS,
    AbstractValue,
    Concrete,
    ProgramSummary,
    ThreadSummary,
    UNKNOWN,
    _AbsState,
    _BarrierGen,
    _category,
    _Collector,
    _EffectMethod,
    _FnInfo,
    _GenCall,
    _Interpreter,
    _StaticEffect,
    _StaticFunc,
    _Top,
    _join,
    _merge_many,
    _merge_states,
    _possible,
    _truth,
    _value_of,
)

__all__ = ["analyze_invivo_program"]


# ---------------------------------------------------------------------------
# Adapter vocabulary.
# ---------------------------------------------------------------------------


#: Adapter methods the interpreter models; anything else is TOP.
_ADAPTER_METHODS: Dict[Type[Any], FrozenSet[str]] = {
    _ad.Lock: frozenset(
        {"acquire", "release", "locked", "__enter__", "__exit__"}
    ),
    _ad.RLock: frozenset({"acquire", "release", "__enter__", "__exit__"}),
    _ad.Event: frozenset({"is_set", "set", "clear", "wait"}),
    _ad.Semaphore: frozenset({"acquire", "release", "__enter__", "__exit__"}),
    _ad.Condition: frozenset(
        {
            "acquire",
            "release",
            "__enter__",
            "__exit__",
            "wait",
            "wait_for",
            "notify",
            "notify_all",
        }
    ),
    _ad.Shared: frozenset({"get", "set"}),
    _ad.Atomic: frozenset({"get", "set", "add", "cas", "exchange"}),
}

_ATOMIC_METHOD_KINDS = {
    "get": EffectKind.ATOMIC_READ,
    "set": EffectKind.ATOMIC_WRITE,
    "add": EffectKind.ATOMIC_ADD,
    "cas": EffectKind.CAS,
    "exchange": EffectKind.EXCHANGE,
}

#: C callables known not to reach back into adapter operations.
_BENIGN_CALLABLES = frozenset(
    {isinstance, issubclass, repr, id, hash, callable, format, print}
)


def _methods_of(obj: Any) -> Optional[FrozenSet[str]]:
    for cls in type(obj).__mro__:
        methods = _ADAPTER_METHODS.get(cls)
        if methods is not None:
            return methods
    return None


def _hidden_key(owner: Any, attr: str) -> str:
    """Stable name for a plain attribute or module global."""
    if isinstance(owner, type):
        return f"{owner.__qualname__}.{attr}"
    if isinstance(owner, types.ModuleType):
        return f"{owner.__name__}.{attr}"
    return f"{type(owner).__qualname__}.{attr}"


@dataclass(eq=False)
class _AdapterMethod:
    """A bound adapter operation, e.g. the value of ``lock.acquire``."""

    objects: Tuple[Any, ...]
    attr: str


class _InvivoCollector(_Collector):
    """Adds the hidden-state facts to the per-thread collector."""

    def __init__(self) -> None:
        super().__init__()
        #: Plain attributes / module globals this thread writes.
        self.hidden_writes: Set[str] = set()
        #: Attributes / globals whose values the analysis folded.
        self.resolved: Set[str] = set()


def _foldable_attr(v: Any) -> bool:
    """Whether an attribute value may be constant-folded.

    Only identity-stable infrastructure values: adapters, callables,
    classes and modules.  Plain data (ints, ``None``, containers...) is
    *never* folded from an attribute -- it is exactly the hidden state
    another thread may mutate behind the analysis's back.
    """
    return (
        isinstance(v, (_ad._Adapter, types.ModuleType, type))
        or callable(v)
    )


# ---------------------------------------------------------------------------
# The interpreter.
# ---------------------------------------------------------------------------


class _InvivoInterpreter(_Interpreter):
    collector: _InvivoCollector

    def __init__(self, collector: _InvivoCollector) -> None:
        super().__init__(collector)
        #: Module of each active callable (for global hidden-write keys).
        self._modules: List[str] = []
        #: Names declared ``global`` in each active callable.
        self._globals_stack: List[Set[str]] = []

    # -- frame plumbing -----------------------------------------------

    def _run_callable(
        self,
        fn: Any,
        pos: Sequence[AbstractValue],
        kw: Mapping[str, AbstractValue],
        state: _AbsState,
    ) -> Tuple[_AbsState, AbstractValue]:
        if isinstance(fn, _StaticFunc):
            module = self._modules[-1] if self._modules else "?"
        else:
            target = fn.__func__ if inspect.ismethod(fn) else fn
            fn_globals = getattr(target, "__globals__", None)
            module = (
                fn_globals.get("__name__", "?") if fn_globals else "?"
            )
        self._modules.append(module)
        self._globals_stack.append(set())
        try:
            return super()._run_callable(fn, pos, kw, state)
        finally:
            self._modules.pop()
            self._globals_stack.pop()

    def _info_for_function(self, fn: Any) -> "_FnInfo":
        code = getattr(fn, "__code__", None)
        cached = code is not None and code in self._info_cache
        info = super()._info_for_function(fn)
        if cached:
            return info
        base_resolver = info.resolver
        target = fn.__func__ if inspect.ismethod(fn) else fn
        fn_globals = target.__globals__
        module = fn_globals.get("__name__", "?")
        collector = self.collector

        def resolver(name: str) -> AbstractValue:
            value = base_resolver(name)
            if (
                isinstance(value, Concrete)
                and name in fn_globals
                and value.value is fn_globals[name]
            ):
                collector.resolved.add(f"{module}.{name}")
            return value

        info.resolver = resolver
        return info

    def _declared_globals(self) -> Set[str]:
        return self._globals_stack[-1] if self._globals_stack else set()

    def _load_name(self, name: str, state: _AbsState) -> AbstractValue:
        if name in self._declared_globals():
            # A ``global`` name this function may rebind: never fold.
            return state.env.get(name, UNKNOWN)
        return super()._load_name(name, state)

    # -- adapter operations -------------------------------------------

    def _apply_alternatives(
        self, alts: Sequence[Sequence[_StaticEffect]], state: _AbsState
    ) -> None:
        """Apply one of several effect sequences (join over receivers)."""
        if not alts:
            return
        if len(alts) == 1:
            for eff in alts[0]:
                self._apply_effect(eff, state)
            return
        branches: List[_AbsState] = []
        for seq in alts:
            branch = state.copy()
            for eff in seq:
                self._apply_effect(eff, branch)
            branches.append(branch)
        merged = _merge_many(branches)
        state.may_held = merged.may_held
        state.must_held = merged.must_held

    def _adapter_attribute(
        self, objs: Tuple[Any, ...], attr: str, state: _AbsState
    ) -> AbstractValue:
        if attr == "name":
            return _value_of([o.name for o in objs])
        if attr == "value":
            if all(isinstance(o, (_ad.Shared, _ad.Atomic)) for o in objs):
                # Reading the property performs the read right here.
                alts = [
                    [
                        _StaticEffect(
                            EffectKind.READ
                            if isinstance(o, _ad.Shared)
                            else EffectKind.ATOMIC_READ,
                            (o._var,),
                        )
                    ]
                    for o in objs
                ]
                self._apply_alternatives(alts, state)
                return UNKNOWN
            raise _Top("attribute 'value' on a non-data adapter")
        for o in objs:
            methods = _methods_of(o)
            if methods is None or attr not in methods:
                raise _Top(
                    f"attribute {attr!r} of adapter {o.name!r} is not a "
                    "modelled operation"
                )
        return Concrete(_AdapterMethod(tuple(objs), attr))

    def _blocking_arg(
        self,
        pos: Sequence[AbstractValue],
        kw: Mapping[str, AbstractValue],
    ) -> Optional[bool]:
        value = kw.get("blocking", pos[0] if pos else Concrete(True))
        return _truth(value)

    def _acquire_alternatives(
        self,
        target: Any,
        blocking: Optional[bool],
        kind: EffectKind = EffectKind.ACQUIRE,
    ) -> Tuple[List[List[_StaticEffect]], AbstractValue]:
        acquire = [_StaticEffect(kind, (target,))]
        try_acquire = [_StaticEffect(EffectKind.TRY_ACQUIRE, (target,))]
        if blocking is True:
            return [acquire], Concrete(True)
        if blocking is False:
            return [try_acquire], UNKNOWN
        return [acquire, try_acquire], UNKNOWN

    def _adapter_op(
        self,
        o: Any,
        attr: str,
        pos: Sequence[AbstractValue],
        kw: Mapping[str, AbstractValue],
    ) -> Tuple[List[List[_StaticEffect]], AbstractValue]:
        """Effect alternatives and abstract result of one adapter call."""
        if isinstance(o, _ad.Lock) or isinstance(o, _ad.RLock):
            target = o._mutex if isinstance(o, _ad.Lock) else o._section
            if attr == "__enter__":
                return self._acquire_alternatives(target, True)
            if attr == "acquire":
                return self._acquire_alternatives(
                    target, self._blocking_arg(pos, kw)
                )
            if attr == "release":
                return (
                    [[_StaticEffect(EffectKind.RELEASE, (target,))]],
                    Concrete(None),
                )
            if attr == "__exit__":
                return (
                    [[_StaticEffect(EffectKind.RELEASE, (target,))]],
                    Concrete(False),
                )
            if attr == "locked":
                return (
                    [[_StaticEffect(EffectKind.ATOMIC_READ, (target,))]],
                    UNKNOWN,
                )
        elif isinstance(o, _ad.Event):
            target = o._event
            if attr == "is_set":
                return (
                    [[_StaticEffect(EffectKind.ATOMIC_READ, (target,))]],
                    UNKNOWN,
                )
            if attr == "set":
                return (
                    [[_StaticEffect(EffectKind.SIGNAL, (target,))]],
                    Concrete(None),
                )
            if attr == "clear":
                return (
                    [[_StaticEffect(EffectKind.RESET, (target,))]],
                    Concrete(None),
                )
            if attr == "wait":
                return (
                    [[_StaticEffect(EffectKind.WAIT, (target,))]],
                    Concrete(True),
                )
        elif isinstance(o, _ad.Semaphore):
            target = o._sem
            if attr in ("acquire", "__enter__"):
                blocking = (
                    True
                    if attr == "__enter__"
                    else self._blocking_arg(pos, kw)
                )
                return self._acquire_alternatives(
                    target, blocking, EffectKind.SEM_ACQUIRE
                )
            if attr == "release":
                return (
                    [[_StaticEffect(EffectKind.SEM_RELEASE, (target,))]],
                    Concrete(None),
                )
            if attr == "__exit__":
                return (
                    [[_StaticEffect(EffectKind.SEM_RELEASE, (target,))]],
                    Concrete(False),
                )
        elif isinstance(o, _ad.Condition):
            mutex = o._lock._mutex
            if attr == "__enter__":
                return self._acquire_alternatives(mutex, True)
            if attr == "acquire":
                return self._acquire_alternatives(
                    mutex, self._blocking_arg(pos, kw)
                )
            if attr == "release":
                return (
                    [[_StaticEffect(EffectKind.RELEASE, (mutex,))]],
                    Concrete(None),
                )
            if attr == "__exit__":
                return (
                    [[_StaticEffect(EffectKind.RELEASE, (mutex,))]],
                    Concrete(False),
                )
            if attr == "wait":
                # The engine's protocol: the CV_WAIT step releases the
                # mutex, and the woken thread re-acquires it (the
                # runtime rewrites the pending op to ACQUIRE).  The
                # RELEASE/re-ACQUIRE pair keeps must/may locksets exact
                # and covers the dynamically recorded re-acquisition.
                return (
                    [
                        [
                            _StaticEffect(EffectKind.CV_WAIT, (o._cv,)),
                            _StaticEffect(EffectKind.RELEASE, (mutex,)),
                            _StaticEffect(EffectKind.ACQUIRE, (mutex,)),
                        ]
                    ],
                    Concrete(True),
                )
            if attr == "notify":
                return (
                    [[_StaticEffect(EffectKind.CV_NOTIFY, (o._cv,))]],
                    Concrete(None),
                )
            if attr == "notify_all":
                return (
                    [[_StaticEffect(EffectKind.CV_BROADCAST, (o._cv,))]],
                    Concrete(None),
                )
        elif isinstance(o, _ad.Shared):
            if attr == "get":
                return (
                    [[_StaticEffect(EffectKind.READ, (o._var,))]],
                    UNKNOWN,
                )
            if attr == "set":
                return (
                    [[_StaticEffect(EffectKind.WRITE, (o._var,))]],
                    Concrete(None),
                )
        elif isinstance(o, _ad.Atomic):
            kind = _ATOMIC_METHOD_KINDS.get(attr)
            if kind is not None:
                ret = (
                    Concrete(None)
                    if attr == "set"
                    else UNKNOWN
                )
                return [[_StaticEffect(kind, (o._var,))]], ret
        raise _Top(
            f"unmodelled operation {attr!r} on adapter "
            f"{getattr(o, 'name', o)!r}"
        )

    def _adapter_call(
        self,
        objs: Tuple[Any, ...],
        attr: str,
        pos: Sequence[AbstractValue],
        kw: Mapping[str, AbstractValue],
        state: _AbsState,
    ) -> AbstractValue:
        if attr == "wait_for":
            return self._condition_wait_for(objs, pos, kw, state)
        alts: List[List[_StaticEffect]] = []
        rets: List[AbstractValue] = []
        for o in objs:
            obj_alts, ret = self._adapter_op(o, attr, pos, kw)
            alts.extend(obj_alts)
            rets.append(ret)
        self._apply_alternatives(alts, state)
        result = rets[0]
        for r in rets[1:]:
            result = _join(result, r)
        return result

    def _condition_wait_for(
        self,
        objs: Tuple[Any, ...],
        pos: Sequence[AbstractValue],
        kw: Mapping[str, AbstractValue],
        state: _AbsState,
    ) -> AbstractValue:
        if len(objs) != 1 or not isinstance(objs[0], _ad.Condition):
            raise _Top("wait_for on an ambiguous receiver")
        cond = objs[0]
        predicate = kw.get("predicate", pos[0] if pos else None)
        if predicate is None:
            raise _Top("wait_for without a predicate")
        wait_alts, _ = self._adapter_op(cond, "wait", (), {})
        self._call_abstract(predicate, (), {}, state)
        # Two wait+re-check passes merged against the zero-wait path.
        for _ in range(2):
            branch = state.copy()
            self._apply_alternatives(wait_alts, branch)
            self._call_abstract(predicate, (), {}, branch)
            merged = _merge_states(state, branch)
            state.env.clear()
            state.env.update(merged.env)
            state.may_held = merged.may_held
            state.must_held = merged.must_held
        return UNKNOWN

    # -- attribute access ---------------------------------------------

    def _eval_attribute(
        self, node: ast.Attribute, state: _AbsState
    ) -> AbstractValue:
        obj = self._eval(node.value, state)
        poss = _possible(obj)
        if poss is None:
            if node.attr == "value":
                raise _Top(
                    "attribute 'value' on an unresolved receiver (may be "
                    "a Shared/Atomic property read)"
                )
            # Reading a plain attribute performs no adapter operation
            # (property receivers degrade below when resolved; see the
            # descriptor guard).  The *value* stays unknown.
            return UNKNOWN
        adapter_objs = [o for o in poss if isinstance(o, _ad._Adapter)]
        if adapter_objs:
            if len(adapter_objs) != len(poss):
                raise _Top(
                    f"attribute {node.attr!r} on mixed adapter/plain values"
                )
            return self._adapter_attribute(
                tuple(adapter_objs), node.attr, state
            )
        if any(isinstance(o, (SharedObject, Barrier)) for o in poss):
            raise _Top(
                f"attribute {node.attr!r} on a core shared object "
                "(adapters only in in-vivo code)"
            )
        results: List[Any] = []
        for o in poss:
            if isinstance(
                o,
                (
                    _StaticFunc,
                    _EffectMethod,
                    _GenCall,
                    _BarrierGen,
                    _AdapterMethod,
                    _StaticEffect,
                ),
            ):
                raise _Top(f"attribute {node.attr!r} on analysis value")
            value = self._static_getattr(o, node.attr)
            if value is _UNFOLDED:
                return UNKNOWN
            self.collector.resolved.add(_hidden_key(o, node.attr))
            results.append(value)
        return _value_of(results)

    def _static_getattr(self, o: Any, attr: str) -> Any:
        """Resolve ``o.attr`` without running user descriptors.

        Returns the folded value, ``_UNFOLDED`` for plain data (sound:
        hidden state is never folded), and raises :class:`_Top` when
        the attribute is dynamic or a user descriptor could run code.
        """
        try:
            static_value = inspect.getattr_static(o, attr)
        except AttributeError:
            raise _Top(
                f"dynamic attribute {attr!r} of {type(o).__name__} "
                "(resolved via __getattr__)"
            )
        if isinstance(static_value, property) or (
            hasattr(type(static_value), "__get__")
            and not isinstance(
                static_value,
                (
                    types.FunctionType,
                    types.BuiltinFunctionType,
                    classmethod,
                    staticmethod,
                    types.MemberDescriptorType,
                    types.GetSetDescriptorType,
                ),
            )
        ):
            raise _Top(
                f"descriptor attribute {attr!r} of {type(o).__name__} "
                "may run arbitrary code"
            )
        try:
            value = getattr(o, attr)
        except Exception:
            raise _Top(f"unreadable attribute {attr!r}")
        if _foldable_attr(value):
            return value
        return _UNFOLDED

    # -- calls --------------------------------------------------------

    def _eval_call(self, node: ast.Call, state: _AbsState) -> AbstractValue:
        func = self._eval(node.func, state)
        pos: List[AbstractValue] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                inner = self._eval(arg.value, state)
                ip = _possible(inner)
                if ip is not None and len(ip) == 1:
                    try:
                        pos.extend(Concrete(v) for v in list(ip[0]))
                        continue
                    except Exception:
                        pass
                raise _Top("unresolvable *args in call")
            pos.append(self._eval(arg, state))
        kw: Dict[str, AbstractValue] = {}
        for keyword in node.keywords:
            if keyword.arg is None:
                raise _Top("**kwargs in call")
            kw[keyword.arg] = self._eval(keyword.value, state)
        return self._call_abstract(func, pos, kw, state, node)

    def _call_abstract(
        self,
        func: AbstractValue,
        pos: Sequence[AbstractValue],
        kw: Mapping[str, AbstractValue],
        state: _AbsState,
        node: Optional[ast.Call] = None,
    ) -> AbstractValue:
        pf = _possible(func)
        if pf is None:
            # Unlike the DSL, a call in real code may hide adapter
            # operations; an unresolved callee is never harmless.
            raise _Top("call of an unresolved callee")
        methods = [c for c in pf if isinstance(c, _AdapterMethod)]
        if methods:
            if len(methods) != len(pf):
                raise _Top("call of mixed adapter-method/plain values")
            attrs = {m.attr for m in methods}
            if len(attrs) != 1:
                raise _Top("call of an ambiguous adapter method")
            objs = tuple(o for m in methods for o in m.objects)
            return self._adapter_call(objs, attrs.pop(), pos, kw, state)
        if len(pf) == 1:
            return self._dispatch_call(pf[0], node, pos, kw, state)
        branches: List[_AbsState] = []
        result: AbstractValue = UNKNOWN
        first = True
        for candidate in pf:
            branch = state.copy()
            ret = self._dispatch_call(candidate, node, pos, kw, branch)
            result = ret if first else _join(result, ret)
            first = False
            branches.append(branch)
        merged = _merge_many(branches)
        state.env.clear()
        state.env.update(merged.env)
        state.may_held = merged.may_held
        state.must_held = merged.must_held
        state.alive = merged.alive
        return result

    def _dispatch_call(
        self,
        callee: Any,
        node: Optional[ast.Call],
        pos: Sequence[AbstractValue],
        kw: Mapping[str, AbstractValue],
        state: _AbsState,
    ) -> AbstractValue:
        if isinstance(
            callee, (_StaticEffect, _GenCall, _BarrierGen, _EffectMethod)
        ):
            raise _Top("call of an analysis value")
        if isinstance(callee, _ad._Adapter):
            raise _Top(f"adapter {callee.name!r} called directly")
        if callee is _check_fn:
            return Concrete(None)
        if isinstance(callee, _StaticFunc):
            self._check_snapshot(callee, state)
            if callee.is_generator:
                raise _Top(
                    f"generator function {callee.name!r} called in "
                    "in-vivo code"
                )
            return self._inline_call(callee, pos, kw, state)
        if callee in _SAFE_BUILTINS:
            if self._args_conceal_effects(pos, kw):
                raise _Top(
                    "callable or user-typed argument to builtin "
                    f"{_SAFE_BUILTINS[callee]}() may hide adapter "
                    "operations"
                )
            return self._fold_builtin(callee, pos, kw)
        if isinstance(callee, type):
            if issubclass(callee, _ad._Adapter):
                raise _Top(
                    "adapter constructed inside a checked thread "
                    "(create shared state in setup)"
                )
            if issubclass(callee, BaseException) or callee is object:
                return UNKNOWN
            if callee.__init__ is object.__init__:  # type: ignore[misc]
                return UNKNOWN
            raise _Top(
                f"construction of {callee.__name__!r} inside a checked "
                "thread"
            )
        if inspect.isgeneratorfunction(callee) or inspect.iscoroutinefunction(
            callee
        ):
            name = getattr(callee, "__name__", "?")
            raise _Top(
                f"call of generator/coroutine function {name!r} in "
                "in-vivo code"
            )
        if inspect.ismethod(callee) or getattr(callee, "__code__", None):
            return self._inline_call(callee, pos, kw, state)
        if callee in _BENIGN_CALLABLES:
            return Concrete(None) if callee is print else UNKNOWN
        if callable(callee):
            if self._args_conceal_effects(pos, kw):
                name = getattr(callee, "__name__", repr(callee))
                raise _Top(
                    f"opaque callable {name!r} with effect-capable "
                    "arguments"
                )
            if node is not None and isinstance(node.func, ast.Attribute):
                self._invalidate_root(node.func, state)
            return UNKNOWN
        # Calling a non-callable raises at runtime; the path dies.
        state.alive = False
        return UNKNOWN

    def _inline_call(
        self,
        callee: Any,
        pos: Sequence[AbstractValue],
        kw: Mapping[str, AbstractValue],
        state: _AbsState,
    ) -> AbstractValue:
        new_state, ret = self._run_callable(callee, list(pos), kw, state)
        state.may_held = new_state.may_held
        state.must_held = new_state.must_held
        state.alive = new_state.alive
        return ret

    def _fold_builtin(
        self,
        callee: Any,
        pos: Sequence[AbstractValue],
        kw: Mapping[str, AbstractValue],
    ) -> AbstractValue:
        arg_poss = [_possible(a) for a in pos]
        kw_poss = {k: _possible(v) for k, v in kw.items()}
        if all(p is not None and len(p) == 1 for p in arg_poss) and all(
            p is not None and len(p) == 1 for p in kw_poss.values()
        ):
            concrete_args = [p[0] for p in arg_poss if p is not None]
            concrete_kw = {
                k: p[0] for k, p in kw_poss.items() if p is not None
            }
            try:
                result = callee(*concrete_args, **concrete_kw)
                if callee in (zip, enumerate, reversed):
                    result = tuple(result)
                return Concrete(result)
            except Exception:
                return UNKNOWN
        return UNKNOWN

    def _args_conceal_effects(
        self,
        pos: Sequence[AbstractValue],
        kw: Mapping[str, AbstractValue],
    ) -> bool:
        """Whether an opaque call could run effectful code on its args.

        Flags known callables, adapters, analysis markers and instances
        of user-defined classes (whose dunder methods an opaque callee
        might invoke).  ``UNKNOWN`` arguments pass -- the documented
        precision/soundness trade-off is recorded in docs/analysis.md.
        """
        values: List[AbstractValue] = list(pos) + list(kw.values())
        for value in values:
            poss = _possible(value)
            if poss is None:
                continue
            for item in poss:
                if self._effect_capable(item):
                    return True
                if isinstance(item, (tuple, list, set, frozenset)):
                    if any(self._effect_capable(sub) for sub in item):
                        return True
                elif isinstance(item, dict):
                    if any(
                        self._effect_capable(sub)
                        for sub in list(item.keys()) + list(item.values())
                    ):
                        return True
        return False

    @staticmethod
    def _effect_capable(x: Any) -> bool:
        if isinstance(
            x,
            (
                _ad._Adapter,
                _StaticFunc,
                _AdapterMethod,
                _EffectMethod,
                _GenCall,
                _BarrierGen,
                _StaticEffect,
                SharedObject,
                Barrier,
            ),
        ):
            return True
        if callable(x) and not isinstance(x, type):
            return True
        mod = getattr(type(x), "__module__", "builtins")
        return mod not in ("builtins", "numbers", "decimal", "fractions")

    # -- generator constructs are foreign to in-vivo code -------------

    def _record_yield(
        self, operand: AbstractValue, state: _AbsState
    ) -> AbstractValue:
        raise _Top("yield in an in-vivo thread body")

    def _eval_yield_from(
        self, node: ast.YieldFrom, state: _AbsState
    ) -> AbstractValue:
        raise _Top("yield from in an in-vivo thread body")

    # -- expressions the DSL fallback would mishandle -----------------

    def _eval(self, node: ast.expr, state: _AbsState) -> AbstractValue:
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for cur in ast.walk(node):
                if isinstance(cur, (ast.Call, ast.Attribute, ast.Await)):
                    raise _Top(
                        f"{type(node).__name__} containing calls or "
                        "attribute access"
                    )
            for gen in node.generators:
                self._eval(gen.iter, state)
            return UNKNOWN
        if isinstance(node, ast.Set):
            for elt in node.elts:
                self._eval(elt, state)
            return UNKNOWN
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part, state)
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, state)
            self._assign_target(node.target, value, state)
            return value
        if isinstance(node, ast.Await):
            raise _Top("await in an in-vivo thread body")
        return super()._eval(node, state)

    # -- statements ---------------------------------------------------

    def _exec_stmt(self, stmt: ast.stmt, state: _AbsState) -> _AbsState:
        if isinstance(stmt, ast.With):
            self._tick()
            return self._exec_with(stmt, state)
        if isinstance(stmt, ast.Global):
            self._tick()
            self._declared_globals().update(stmt.names)
            return state
        if isinstance(stmt, ast.Raise):
            self._tick()
            if stmt.exc is not None:
                self._eval(stmt.exc, state)
            if stmt.cause is not None:
                self._eval(stmt.cause, state)
            state.alive = False
            return state
        if isinstance(stmt, ast.Assert):
            self._tick()
            self._eval(stmt.test, state)
            if stmt.msg is not None:
                # The message only evaluates on the failing path.
                self._eval(stmt.msg, state.copy())
            return state
        if isinstance(stmt, ast.AugAssign):
            self._tick()
            return self._exec_augassign(stmt, state)
        if isinstance(stmt, ast.Delete):
            self._tick()
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state.env[target.id] = UNKNOWN
                else:
                    raise _Top("del of a non-name target")
            return state
        return super()._exec_stmt(stmt, state)

    def _exec_with(self, stmt: ast.With, state: _AbsState) -> _AbsState:
        entered: List[Tuple[Any, ...]] = []
        for item in stmt.items:
            ctx_value = self._eval(item.context_expr, state)
            poss = _possible(ctx_value)
            if poss is None:
                raise _Top("with-statement on an unresolved context manager")
            if not all(isinstance(o, _ad._Adapter) for o in poss):
                raise _Top(
                    "with-statement on a non-adapter context manager"
                )
            objs = tuple(poss)
            ret = self._adapter_call(objs, "__enter__", (), {}, state)
            if item.optional_vars is not None:
                self._assign_target(item.optional_vars, ret, state)
            entered.append(objs)
        frame = self._frame
        n_returns = len(frame.returns)
        loop = frame.loops[-1] if frame.loops else None
        n_breaks = len(loop.breaks) if loop else 0
        n_continues = len(loop.continues) if loop else 0
        after_enter = state.copy()
        out = self._exec_block(stmt.body, state)

        def exit_all(s: _AbsState) -> None:
            for objs in reversed(entered):
                self._adapter_call(objs, "__exit__", (), {}, s)

        exited = False
        if out.alive:
            exit_all(out)
            exited = True
        for captured, _ in frame.returns[n_returns:]:
            exit_all(captured)
            exited = True
        if loop is not None:
            for captured in loop.breaks[n_breaks:]:
                exit_all(captured)
                exited = True
            for captured in loop.continues[n_continues:]:
                exit_all(captured)
                exited = True
        if not exited:
            # Every path raises; the runtime still runs __exit__ while
            # unwinding, so record its accesses on a scratch state.
            exit_all(after_enter)
        return out

    def _exec_augassign(
        self, stmt: ast.AugAssign, state: _AbsState
    ) -> _AbsState:
        value = self._eval(stmt.value, state)
        target = stmt.target
        if isinstance(target, ast.Name):
            if target.id in self._declared_globals():
                self._note_global_write(target.id, state)
                return state
            current = self._load_name(target.id, state)
            state.env[target.id] = self._apply_binop(
                type(stmt.op), current, value
            )
            return state
        if isinstance(target, ast.Attribute):
            recv = self._eval(target.value, state)
            poss = _possible(recv)
            if poss is None:
                raise _Top(
                    f"augmented assignment to attribute {target.attr!r} "
                    "on an unresolved receiver"
                )
            adapter_objs = [o for o in poss if isinstance(o, _ad._Adapter)]
            if adapter_objs:
                if len(adapter_objs) != len(poss) or target.attr != "value":
                    raise _Top(
                        "augmented assignment to adapter attribute "
                        f"{target.attr!r}"
                    )
                for o in adapter_objs:
                    if not isinstance(o, (_ad.Shared, _ad.Atomic)):
                        raise _Top(
                            "augmented assignment to 'value' of a "
                            "non-data adapter"
                        )
                # ``shared.value += v`` reads then writes the variable.
                read_alts = [
                    [
                        _StaticEffect(
                            EffectKind.READ
                            if isinstance(o, _ad.Shared)
                            else EffectKind.ATOMIC_READ,
                            (o._var,),
                        )
                    ]
                    for o in adapter_objs
                ]
                write_alts = [
                    [
                        _StaticEffect(
                            EffectKind.WRITE
                            if isinstance(o, _ad.Shared)
                            else EffectKind.ATOMIC_WRITE,
                            (o._var,),
                        )
                    ]
                    for o in adapter_objs
                ]
                self._apply_alternatives(read_alts, state)
                self._apply_alternatives(write_alts, state)
                return state
            for o in poss:
                self._note_hidden_write(o, target.attr)
            # No invalidation: attribute *data* is never folded, and
            # folded infrastructure values are protected by the
            # resolved/written degrade pass in analyze_invivo_program.
            return state
        if isinstance(target, ast.Subscript):
            self._check_subscript_store(target, state)
            self._invalidate_root(target, state)
            return state
        raise _Top(
            f"unsupported augmented-assignment target "
            f"{type(target).__name__}"
        )

    def _note_global_write(self, name: str, state: _AbsState) -> None:
        module = self._modules[-1] if self._modules else "?"
        self.collector.hidden_writes.add(f"{module}.{name}")
        state.env[name] = UNKNOWN

    def _note_hidden_write(self, o: Any, attr: str) -> None:
        if isinstance(
            o,
            (
                _StaticFunc,
                _EffectMethod,
                _GenCall,
                _BarrierGen,
                _AdapterMethod,
                _StaticEffect,
                SharedObject,
                Barrier,
            ),
        ):
            raise _Top(f"attribute {attr!r} assigned on analysis value")
        if not isinstance(o, (type, types.ModuleType)):
            setter = type(o).__setattr__
            if setter is not object.__setattr__:
                raise _Top(
                    f"attribute store via custom __setattr__ of "
                    f"{type(o).__name__}"
                )
        self.collector.hidden_writes.add(_hidden_key(o, attr))

    def _check_subscript_store(
        self, target: ast.Subscript, state: _AbsState
    ) -> None:
        recv = self._eval(target.value, state)
        self._eval(target.slice, state)
        poss = _possible(recv)
        if poss is None or not all(
            isinstance(o, (dict, list, set, bytearray)) for o in poss
        ):
            raise _Top(
                "subscript assignment on a non-builtin container "
                "(a custom __setitem__ may hide adapter operations)"
            )

    def _assign_target(
        self, target: ast.expr, value: AbstractValue, state: _AbsState
    ) -> None:
        if isinstance(target, ast.Name):
            if target.id in self._declared_globals():
                self._note_global_write(target.id, state)
                return
            state.env[target.id] = value
            return
        if isinstance(target, ast.Attribute):
            recv = self._eval(target.value, state)
            poss = _possible(recv)
            if poss is None:
                raise _Top(
                    f"assignment to attribute {target.attr!r} on an "
                    "unresolved receiver"
                )
            adapter_objs = [o for o in poss if isinstance(o, _ad._Adapter)]
            if adapter_objs:
                if len(adapter_objs) != len(poss):
                    raise _Top(
                        "attribute assignment on mixed adapter/plain "
                        "values"
                    )
                if target.attr == "value" and all(
                    isinstance(o, (_ad.Shared, _ad.Atomic))
                    for o in adapter_objs
                ):
                    alts = [
                        [
                            _StaticEffect(
                                EffectKind.WRITE
                                if isinstance(o, _ad.Shared)
                                else EffectKind.ATOMIC_WRITE,
                                (o._var,),
                            )
                        ]
                        for o in adapter_objs
                    ]
                    self._apply_alternatives(alts, state)
                    return
                raise _Top(
                    f"assignment to adapter attribute {target.attr!r}"
                )
            for o in poss:
                self._note_hidden_write(o, target.attr)
            return
        if isinstance(target, ast.Subscript):
            self._check_subscript_store(target, state)
            self._invalidate_root(target, state)
            return
        super()._assign_target(target, value, state)


#: Sentinel: an attribute exists but is plain data we refuse to fold.
_UNFOLDED = object()


# ---------------------------------------------------------------------------
# Program-level analysis.
# ---------------------------------------------------------------------------


def _analyze_one_invivo(
    label: str, fn: Any, args: Tuple[AbstractValue, ...]
) -> ThreadSummary:
    collector = _InvivoCollector()
    interp = _InvivoInterpreter(collector)
    state = _AbsState({}, set(), set())
    try:
        exit_state, _ = interp._run_callable(fn, list(args), {}, state)
        exit_unreleased = (
            frozenset(exit_state.must_held)
            if exit_state.alive
            else frozenset()
        )
    except _Top as top:
        return ThreadSummary.make_top(label, top.reason, False)
    except RecursionError:  # pragma: no cover - defensive
        return ThreadSummary.make_top(label, "analyzer recursion limit", False)
    except Exception as exc:
        # Safety net: analyzer bugs degrade to TOP, never to a silently
        # wrong summary.
        reason = f"analyzer error: {type(exc).__name__}: {exc}"
        return ThreadSummary.make_top(label, reason, False)
    return ThreadSummary(
        label=label,
        top=False,
        top_reason="",
        multi_instance=False,
        accesses=tuple(collector.accesses),
        lock_edges=frozenset(collector.lock_edges),
        exit_unreleased=exit_unreleased,
        double_acquires=tuple(collector.double_acquires),
        waited_events=frozenset(collector.waited_events),
        signalled_events=frozenset(collector.signalled_events),
        spawned_labels=(),
        hidden_writes=frozenset(collector.hidden_writes),
        resolved_attrs=frozenset(collector.resolved),
    )


def analyze_invivo_program(program: InvivoProgram) -> ProgramSummary:
    """Compute sound static summaries for an :class:`InvivoProgram`.

    Runs the program's setup once (``instantiate_raw``; no thread body
    executes) to learn the shared-object catalog and the raw thread
    callables, interprets each callable's source, then cross-checks the
    hidden-state facts: any thread whose constant-folded attributes or
    globals (``resolved_attrs``) are written by some checked thread
    (``hidden_writes``) is degraded to TOP -- its folds may be stale.
    """
    world, _ctx, specs = program.instantiate_raw()
    variables: Dict[str, str] = {}
    events_initially_set: Dict[str, bool] = {}
    for obj in world.objects:
        variables[obj.name] = _category(obj)
        if isinstance(obj, _CoreEvent):
            events_initially_set[obj.name] = obj.is_set

    used_labels: Set[str] = set()
    summaries: List[ThreadSummary] = []
    for label, fn, args in specs:
        unique = label
        n = 2
        while unique in used_labels:
            unique = f"{label}~{n}"
            n += 1
        used_labels.add(unique)
        summaries.append(
            _analyze_one_invivo(
                unique, fn, tuple(Concrete(a) for a in args)
            )
        )

    written: Set[str] = set()
    for summary in summaries:
        if not summary.top:
            written |= set(summary.hidden_writes)
    out: List[ThreadSummary] = []
    for summary in summaries:
        clash = set(summary.resolved_attrs) & written
        if not summary.top and clash:
            names = ", ".join(sorted(clash))
            out.append(
                ThreadSummary.make_top(
                    summary.label,
                    f"statically resolved state ({names}) is mutated by "
                    "a checked thread",
                    summary.multi_instance,
                )
            )
        else:
            out.append(summary)

    return ProgramSummary(
        program=program.name,
        threads=tuple(out),
        variables=variables,
        events_initially_set=events_initially_set,
    )
