"""Static per-thread effect summaries over the effect DSL.

Thread bodies in this codebase are Python generator functions that
yield :class:`~repro.core.effects.Effect` descriptions built by calling
effect constructors on shared objects (``counter.read()``,
``lock.acquire()``, ...).  Because every interaction with shared state
must pass through a ``yield``, a static walk of the body's AST that
tracks which shared objects flow into those constructor calls sees a
superset of everything the thread can do at runtime.

This module implements that walk as a small abstract interpreter:

* **Values** live in a three-level lattice: ``Concrete(v)`` (exactly
  one runtime value, typically a shared object captured from the
  enclosing ``setup`` closure), ``AnyOf(v1, ..., vk)`` (one of a small
  known set, e.g. a loop variable over ``range(3)``), and ``UNKNOWN``
  (no information).
* **Effects** are recorded whenever a ``yield`` is interpreted.  A
  yield whose operand cannot be resolved to a known set of effect
  descriptions aborts the analysis of that thread with **TOP**: the
  summary that conservatively contains every possible behaviour.
* **Locksets** are tracked in both directions: ``must_held``
  (intersection at joins -- an under-approximation, used by the
  Eraser-style race candidates in :mod:`repro.analysis.racecand`) and
  ``may_held`` (union at joins -- an over-approximation, used for
  lock-order edges in :mod:`repro.analysis.lockgraph` and the lint
  findings in :mod:`repro.analysis.lint`).

Soundness contract (relied on by the search reduction): for every
thread whose summary is not TOP, the dynamic accesses the thread
performs in *any* execution are contained in ``summary.accesses``, and
the ``must_locks`` attached to each access under-approximate the locks
actually held.  Anything the interpreter cannot prove it handles
exactly -- unsupported statements, unresolvable callees, direct
attribute reads of shared objects -- degrades to TOP rather than
guessing.  A per-thread safety net additionally converts *any*
analyzer exception into TOP, so a bug in the analysis itself can only
lose precision, never soundness.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import textwrap
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..core import effects as _effects_mod
from ..core import program as _program_mod
from ..core.effects import EffectKind
from ..core.heap import HeapField, HeapRef
from ..core.objects import SharedObject
from ..core.program import Program
from ..core.sync import (
    Barrier,
    CondVar,
    CriticalSection,
    Event,
    Mutex,
    RWLock,
    Semaphore,
)
from ..core.variables import AtomicVar, SharedVar

__all__ = [
    "PRUNABLE_KINDS",
    "StaticAccess",
    "ThreadSummary",
    "ProgramSummary",
    "analyze_program",
]

#: Effect kinds whose steps commute with every step of another thread
#: when their target is proven thread-local: plain and atomic data
#: accesses.  Blocking/signalling kinds are never prunable -- even on a
#: "local" object they change enabledness.
PRUNABLE_KINDS: FrozenSet[EffectKind] = frozenset(
    {
        EffectKind.READ,
        EffectKind.WRITE,
        EffectKind.ATOMIC_READ,
        EffectKind.ATOMIC_WRITE,
        EffectKind.CAS,
        EffectKind.ATOMIC_ADD,
        EffectKind.EXCHANGE,
        EffectKind.HEAP_READ,
        EffectKind.HEAP_WRITE,
    }
)

_WRITE_KINDS: FrozenSet[EffectKind] = frozenset(
    {
        EffectKind.WRITE,
        EffectKind.HEAP_WRITE,
        EffectKind.ATOMIC_WRITE,
        EffectKind.CAS,
        EffectKind.ATOMIC_ADD,
        EffectKind.EXCHANGE,
        EffectKind.FREE,
        EffectKind.SIGNAL,
        EffectKind.RESET,
    }
)

#: Categories whose accesses are *data* accesses (race candidates).
DATA_CATEGORIES: FrozenSet[str] = frozenset({"data", "field"})

#: Categories that participate in locksets and the lock-order graph.
LOCK_CATEGORIES: FrozenSet[str] = frozenset({"mutex", "critsec", "rwlock"})

_ANYOF_CAP = 16
_STEP_BUDGET = 50_000


# ---------------------------------------------------------------------------
# The value lattice.
# ---------------------------------------------------------------------------


class _Unknown:
    """Singleton bottom-of-information value."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UNKNOWN"


UNKNOWN = _Unknown()


@dataclass(frozen=True, eq=False)
class Concrete:
    """Exactly one possible runtime value."""

    value: Any

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Concrete):
            return NotImplemented
        return _same_runtime_value(self.value, other.value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Concrete({self.value!r})"


@dataclass(frozen=True, eq=False)
class AnyOf:
    """One of a small, known set of runtime values."""

    values: Tuple[Any, ...]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AnyOf):
            return NotImplemented
        if len(self.values) != len(other.values):
            return False
        return all(
            _same_runtime_value(a, b) for a, b in zip(self.values, other.values)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AnyOf({self.values!r})"


AbstractValue = Any  # Union[_Unknown, Concrete, AnyOf]


def _same_runtime_value(a: Any, b: Any) -> bool:
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    try:
        return bool(a == b)
    except Exception:
        return False


def _possible(value: AbstractValue) -> Optional[Tuple[Any, ...]]:
    """The tuple of possible runtime values, or ``None`` for UNKNOWN."""
    if isinstance(value, Concrete):
        return (value.value,)
    if isinstance(value, AnyOf):
        return value.values
    return None


def _value_of(candidates: Sequence[Any]) -> AbstractValue:
    out: List[Any] = []
    for v in candidates:
        if not any(_same_runtime_value(x, v) for x in out):
            out.append(v)
        if len(out) > _ANYOF_CAP:
            return UNKNOWN
    if not out:
        return UNKNOWN
    if len(out) == 1:
        return Concrete(out[0])
    return AnyOf(tuple(out))


def _join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if isinstance(a, (Concrete, AnyOf)) and isinstance(b, (Concrete, AnyOf)):
        pa = _possible(a)
        pb = _possible(b)
        assert pa is not None and pb is not None
        return _value_of(list(pa) + list(pb))
    return UNKNOWN


def _truth(value: AbstractValue) -> Optional[bool]:
    poss = _possible(value)
    if poss is None:
        return None
    truths: Set[bool] = set()
    for v in poss:
        try:
            truths.add(bool(v))
        except Exception:
            return None
    if truths == {True}:
        return True
    if truths == {False}:
        return False
    return None


class _Top(Exception):
    """Raised to abandon a thread's analysis with a TOP summary."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# ---------------------------------------------------------------------------
# Marker values produced while evaluating expressions.
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class _StaticFunc:
    """A function defined by a ``def`` statement inside a thread body."""

    name: str
    node: ast.FunctionDef
    snapshot: Dict[str, AbstractValue]
    outer: Callable[[str], AbstractValue]
    defaults: Tuple[AbstractValue, ...]
    is_generator: bool


@dataclass(eq=False)
class _EffectMethod:
    """A bound effect constructor, e.g. the value of ``counter.read``."""

    objects: Tuple[Any, ...]
    attr: str


@dataclass(eq=False)
class _GenCall:
    """A generator call awaiting ``yield from`` inlining."""

    fn: Any  # real generator function or _StaticFunc
    args: Tuple[AbstractValue, ...]
    kwargs: Dict[str, AbstractValue]


@dataclass(eq=False)
class _BarrierGen:
    """The generator returned by ``Barrier.wait()``."""

    barrier: Barrier


@dataclass(eq=False)
class _StaticEffect:
    """A statically resolved effect description (mirrors ``Effect``)."""

    kind: EffectKind
    targets: Tuple[Any, ...] = ()
    spawn_fn: AbstractValue = UNKNOWN
    spawn_args: Tuple[AbstractValue, ...] = ()
    spawn_name: Optional[str] = None


# Effect-constructor tables: (owning type, method name) -> EffectKind.
_EFFECT_METHODS: Dict[type, Dict[str, EffectKind]] = {
    SharedVar: {"read": EffectKind.READ, "write": EffectKind.WRITE},
    AtomicVar: {
        "read": EffectKind.ATOMIC_READ,
        "write": EffectKind.ATOMIC_WRITE,
        "cas": EffectKind.CAS,
        "add": EffectKind.ATOMIC_ADD,
        "exchange": EffectKind.EXCHANGE,
    },
    Mutex: {
        "acquire": EffectKind.ACQUIRE,
        "try_acquire": EffectKind.TRY_ACQUIRE,
        "release": EffectKind.RELEASE,
    },
    CriticalSection: {
        "enter": EffectKind.ACQUIRE,
        "try_enter": EffectKind.TRY_ACQUIRE,
        "leave": EffectKind.RELEASE,
    },
    Event: {
        "wait": EffectKind.WAIT,
        "set": EffectKind.SIGNAL,
        "reset": EffectKind.RESET,
    },
    Semaphore: {
        "acquire": EffectKind.SEM_ACQUIRE,
        "release": EffectKind.SEM_RELEASE,
    },
    CondVar: {
        "wait": EffectKind.CV_WAIT,
        "notify": EffectKind.CV_NOTIFY,
        "broadcast": EffectKind.CV_BROADCAST,
    },
    RWLock: {
        "acquire_read": EffectKind.RW_ACQUIRE_READ,
        "acquire_write": EffectKind.RW_ACQUIRE_WRITE,
        "release": EffectKind.RW_RELEASE,
    },
    HeapRef: {
        "read": EffectKind.HEAP_READ,
        "write": EffectKind.HEAP_WRITE,
        "free": EffectKind.FREE,
    },
}

_SAFE_BUILTINS: Dict[Any, str] = {
    fn: fn.__name__
    for fn in (
        range, len, min, max, abs, sorted, sum, divmod,
        tuple, list, set, dict, str, int, bool, float,
        ord, chr, zip, enumerate, reversed,
    )
}

_BINOPS: Dict[type, Callable[[Any, Any], Any]] = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a**b,
    ast.BitAnd: lambda a, b: a & b,
    ast.BitOr: lambda a, b: a | b,
    ast.BitXor: lambda a, b: a ^ b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
}

_CMPOPS: Dict[type, Callable[[Any, Any], Any]] = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
    ast.Is: lambda a, b: a is b,
    ast.IsNot: lambda a, b: a is not b,
}

_UNARYOPS: Dict[type, Callable[[Any], Any]] = {
    ast.USub: lambda a: -a,
    ast.UAdd: lambda a: +a,
    ast.Not: lambda a: not a,
    ast.Invert: lambda a: ~a,
}


def _is_generator_node(node: ast.FunctionDef) -> bool:
    """Whether ``node``'s own scope contains a yield."""
    stack: List[ast.AST] = list(node.body)
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(cur))
    return False


def _contains_yield(node: ast.AST) -> bool:
    for cur in ast.walk(node):
        if isinstance(cur, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _local_names(node: ast.FunctionDef) -> FrozenSet[str]:
    """Names bound in ``node``'s own scope (params, stores, defs)."""
    names: Set[str] = set()
    args = node.args
    for a in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(a.arg)
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    stack: List[ast.AST] = list(node.body)
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(cur.name)
            continue
        if isinstance(cur, ast.Lambda):
            continue
        if isinstance(cur, ast.Name) and isinstance(cur.ctx, (ast.Store, ast.Del)):
            names.add(cur.id)
        stack.extend(ast.iter_child_nodes(cur))
    return frozenset(names)


# ---------------------------------------------------------------------------
# Abstract interpreter state.
# ---------------------------------------------------------------------------


class _AbsState:
    """Abstract state at one program point of one frame."""

    __slots__ = ("env", "may_held", "must_held", "alive")

    def __init__(
        self,
        env: Dict[str, AbstractValue],
        may_held: Set[str],
        must_held: Set[str],
        alive: bool = True,
    ) -> None:
        self.env = env
        self.may_held = may_held
        self.must_held = must_held
        self.alive = alive

    def copy(self) -> "_AbsState":
        return _AbsState(
            dict(self.env), set(self.may_held), set(self.must_held), self.alive
        )


def _merge_states(a: _AbsState, b: _AbsState) -> _AbsState:
    if not a.alive:
        return b
    if not b.alive:
        return a
    env: Dict[str, AbstractValue] = {}
    for name in set(a.env) | set(b.env):
        if name in a.env and name in b.env:
            env[name] = _join(a.env[name], b.env[name])
        else:
            env[name] = UNKNOWN
    return _AbsState(env, a.may_held | b.may_held, a.must_held & b.must_held, True)


def _merge_many(states: Sequence[_AbsState]) -> _AbsState:
    out = states[0]
    for s in states[1:]:
        out = _merge_states(out, s)
    return out


class _LoopCtx:
    __slots__ = ("breaks", "continues")

    def __init__(self) -> None:
        self.breaks: List[_AbsState] = []
        self.continues: List[_AbsState] = []


class _FrameCtx:
    __slots__ = ("resolver", "locals", "returns", "loops")

    def __init__(
        self, resolver: Callable[[str], AbstractValue], local_names: FrozenSet[str]
    ) -> None:
        self.resolver = resolver
        self.locals = local_names
        self.returns: List[Tuple[_AbsState, AbstractValue]] = []
        self.loops: List[_LoopCtx] = []


@dataclass(eq=False)
class _FnInfo:
    key: Any
    name: str
    node: ast.FunctionDef
    resolver: Callable[[str], AbstractValue]
    defaults: Tuple[AbstractValue, ...]
    kw_defaults: Dict[str, AbstractValue]


class _Collector:
    """Accumulates the facts one thread's interpretation produces."""

    def __init__(self) -> None:
        self.accesses: List[StaticAccess] = []
        self.lock_edges: Set[Tuple[str, str]] = set()
        self.double_acquires: List[str] = []
        self.spawns: List[Tuple[Any, Tuple[AbstractValue, ...], Optional[str]]] = []
        self.waited_events: Set[str] = set()
        self.signalled_events: Set[str] = set()


# ---------------------------------------------------------------------------
# Summary dataclasses.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StaticAccess:
    """One possible shared-object access of a thread.

    ``must_locks`` is the set of lock names *definitely* held when the
    access executes (an under-approximation, per the Eraser lockset
    discipline).
    """

    kind: EffectKind
    variable: str
    is_write: bool
    must_locks: FrozenSet[str]


@dataclass(frozen=True)
class ThreadSummary:
    """A sound over-approximation of one thread's shared accesses."""

    label: str
    top: bool = False
    top_reason: str = ""
    multi_instance: bool = False
    accesses: Tuple[StaticAccess, ...] = ()
    lock_edges: FrozenSet[Tuple[str, str]] = frozenset()
    exit_unreleased: FrozenSet[str] = frozenset()
    double_acquires: Tuple[str, ...] = ()
    waited_events: FrozenSet[str] = frozenset()
    signalled_events: FrozenSet[str] = frozenset()
    spawned_labels: Tuple[str, ...] = ()
    #: In-vivo only: plain attributes / module globals this thread
    #: writes without a Shared/Atomic wrapper (hidden-state lint).
    hidden_writes: FrozenSet[str] = frozenset()
    #: In-vivo only: attribute/global values the analysis folded
    #: (degraded to TOP when some checked thread writes them).
    resolved_attrs: FrozenSet[str] = frozenset()

    @classmethod
    def make_top(
        cls, label: str, reason: str, multi_instance: bool = False
    ) -> "ThreadSummary":
        return cls(
            label=label, top=True, top_reason=reason, multi_instance=multi_instance
        )

    @cached_property
    def access_pairs(self) -> FrozenSet[Tuple[str, str]]:
        """``(kind.value, variable)`` pairs this thread may perform."""
        return frozenset((a.kind.value, a.variable) for a in self.accesses)

    @cached_property
    def touched(self) -> FrozenSet[str]:
        """Names of every shared object this thread may access."""
        return frozenset(a.variable for a in self.accesses)

    @cached_property
    def written(self) -> FrozenSet[str]:
        return frozenset(a.variable for a in self.accesses if a.is_write)

    def covers(self, kind: EffectKind, variable: str) -> bool:
        """Whether a dynamic ``(kind, variable)`` access is explained."""
        if self.top:
            return True
        return (kind.value, variable) in self.access_pairs


@dataclass(frozen=True)
class ProgramSummary:
    """The static summaries of every thread a program can create."""

    program: str
    threads: Tuple[ThreadSummary, ...]
    #: shared-object name -> category ("data", "atomic", "mutex",
    #: "critsec", "event", "semaphore", "condvar", "rwlock", "heap",
    #: "field").
    variables: Mapping[str, str]
    #: event name -> initially-set flag (for the never-set-event lint).
    events_initially_set: Mapping[str, bool]

    @property
    def any_top(self) -> bool:
        return any(t.top for t in self.threads)

    @cached_property
    def proven_local(self) -> FrozenSet[str]:
        """Shared objects accessed by at most one thread instance.

        Empty whenever any summary is TOP (the soundness guard: a TOP
        thread may access anything).  A variable touched by a summary
        that can have multiple runtime instances is never local.
        """
        if self.any_top or not self.threads:
            return frozenset()
        weight: Dict[str, int] = {name: 0 for name in self.variables}
        for summary in self.threads:
            per_instance = 2 if summary.multi_instance else 1
            for name in summary.touched:
                if name in weight:
                    weight[name] += per_instance
        return frozenset(name for name, w in weight.items() if w <= 1)

    def covers(self, kind: EffectKind, variable: str) -> bool:
        """Whether some thread summary explains the dynamic access."""
        return any(t.covers(kind, variable) for t in self.threads)

    def summary_for(self, label: str) -> Optional[ThreadSummary]:
        for t in self.threads:
            if t.label == label:
                return t
        return None


# ---------------------------------------------------------------------------
# The interpreter.
# ---------------------------------------------------------------------------


class _Interpreter:
    def __init__(self, collector: _Collector) -> None:
        self.collector = collector
        self._frames: List[_FrameCtx] = []
        self._active: List[Any] = []
        self._info_cache: Dict[Any, _FnInfo] = {}
        self._steps = 0

    # -- frame plumbing -----------------------------------------------

    @property
    def _frame(self) -> _FrameCtx:
        return self._frames[-1]

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > _STEP_BUDGET:
            raise _Top("analysis step budget exceeded")

    # -- function resolution ------------------------------------------

    def _info_for_function(self, fn: Any) -> _FnInfo:
        code = getattr(fn, "__code__", None)
        if code is None:
            raise _Top(f"cannot analyze non-Python callable {fn!r}")
        cached = self._info_cache.get(code)
        if cached is not None:
            return cached
        try:
            source = textwrap.dedent(inspect.getsource(fn))
        except (OSError, TypeError) as exc:
            raise _Top(f"no source for {getattr(fn, '__name__', fn)!r}: {exc}")
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:  # pragma: no cover - defensive
            raise _Top(f"unparseable source for {fn.__name__!r}: {exc}")
        node: Optional[ast.FunctionDef] = None
        for cur in ast.walk(tree):
            if isinstance(cur, ast.FunctionDef) and cur.name == fn.__name__:
                node = cur
                break
        if node is None:
            raise _Top(f"no function definition found for {fn.__name__!r}")

        closure: Dict[str, Any] = {}
        cells = fn.__closure__ or ()
        for name, cell in zip(code.co_freevars, cells):
            closure[name] = cell
        fn_globals = fn.__globals__

        def resolver(name: str) -> AbstractValue:
            if name in closure:
                try:
                    return Concrete(closure[name].cell_contents)
                except ValueError:
                    return UNKNOWN
            if name in fn_globals:
                return Concrete(fn_globals[name])
            if hasattr(builtins, name):
                return Concrete(getattr(builtins, name))
            return UNKNOWN

        defaults = tuple(Concrete(v) for v in (fn.__defaults__ or ()))
        kw_defaults = {
            k: Concrete(v) for k, v in (fn.__kwdefaults__ or {}).items()
        }
        info = _FnInfo(code, fn.__name__, node, resolver, defaults, kw_defaults)
        self._info_cache[code] = info
        return info

    def _info_for_static(self, sf: _StaticFunc) -> _FnInfo:
        snapshot = sf.snapshot
        outer = sf.outer

        def resolver(name: str) -> AbstractValue:
            if name in snapshot:
                return snapshot[name]
            return outer(name)

        kw_defaults: Dict[str, AbstractValue] = {}
        node_args = sf.node.args
        for a, dflt in zip(node_args.kwonlyargs, node_args.kw_defaults):
            if dflt is not None:
                kw_defaults[a.arg] = UNKNOWN
        return _FnInfo(sf.node, sf.name, sf.node, resolver, sf.defaults, kw_defaults)

    # -- calling ------------------------------------------------------

    def _bind_params(
        self,
        info: _FnInfo,
        pos: Sequence[AbstractValue],
        kw: Mapping[str, AbstractValue],
    ) -> Dict[str, AbstractValue]:
        args = info.node.args
        names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
        env: Dict[str, AbstractValue] = {}
        pos = list(pos)
        for i, name in enumerate(names):
            if i < len(pos):
                env[name] = pos[i]
            elif name in kw:
                env[name] = kw[name]
            else:
                # Align defaults with the tail of the parameter list.
                dflt_index = i - (len(names) - len(info.defaults))
                if 0 <= dflt_index < len(info.defaults):
                    env[name] = info.defaults[dflt_index]
                else:
                    env[name] = UNKNOWN
        if args.vararg is not None:
            rest = pos[len(names):]
            parts = [_possible(v) for v in rest]
            if all(p is not None and len(p) == 1 for p in parts):
                env[args.vararg.arg] = Concrete(
                    tuple(p[0] for p in parts if p is not None)
                )
            else:
                env[args.vararg.arg] = UNKNOWN
        for a in args.kwonlyargs:
            if a.arg in kw:
                env[a.arg] = kw[a.arg]
            else:
                env[a.arg] = info.kw_defaults.get(a.arg, UNKNOWN)
        if args.kwarg is not None:
            env[args.kwarg.arg] = UNKNOWN
        return env

    def _run_callable(
        self,
        fn: Any,
        pos: Sequence[AbstractValue],
        kw: Mapping[str, AbstractValue],
        state: _AbsState,
    ) -> Tuple[_AbsState, AbstractValue]:
        """Interpret a call, threading lock state through the callee.

        Returns the caller's state after the call and the abstract
        return value.  The caller's local environment is untouched.
        """
        if inspect.ismethod(fn):
            pos = [Concrete(fn.__self__)] + list(pos)
            fn = fn.__func__
        if isinstance(fn, _StaticFunc):
            info = self._info_for_static(fn)
        else:
            info = self._info_for_function(fn)
        if any(k is info.key for k in self._active):
            raise _Top(f"recursive call of {info.name!r}")
        env = self._bind_params(info, pos, kw)
        callee = _AbsState(env, set(state.may_held), set(state.must_held), True)
        self._active.append(info.key)
        self._frames.append(_FrameCtx(info.resolver, _local_names(info.node)))
        try:
            out = self._exec_block(info.node.body, callee)
            exits: List[Tuple[_AbsState, AbstractValue]] = list(self._frame.returns)
            if out.alive:
                exits.append((out, Concrete(None)))
        finally:
            self._frames.pop()
            self._active.pop()
        after = state.copy()
        if not exits:
            after.alive = False
            return after, UNKNOWN
        merged = _merge_many([s for s, _ in exits])
        ret = exits[0][1]
        for _, r in exits[1:]:
            ret = _join(ret, r)
        after.may_held = merged.may_held
        after.must_held = merged.must_held
        return after, ret

    # -- statements ---------------------------------------------------

    def _exec_block(self, stmts: Sequence[ast.stmt], state: _AbsState) -> _AbsState:
        for stmt in stmts:
            if not state.alive:
                break
            state = self._exec_stmt(stmt, state)
        return state

    def _exec_stmt(self, stmt: ast.stmt, state: _AbsState) -> _AbsState:
        self._tick()
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, state)
            return state
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, state)
            for target in stmt.targets:
                self._assign_target(target, value, state)
            return state
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self._eval(stmt.value, state)
                self._assign_target(stmt.target, value, state)
            return state
        if isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value, state)
            if isinstance(stmt.target, ast.Name):
                current = self._load_name(stmt.target.id, state)
                state.env[stmt.target.id] = self._apply_binop(
                    type(stmt.op), current, value
                )
            else:
                self._invalidate_root(stmt.target, state)
            return state
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, state)
        if isinstance(stmt, ast.While):
            return self._exec_while(stmt, state)
        if isinstance(stmt, ast.For):
            return self._exec_for(stmt, state)
        if isinstance(stmt, ast.Return):
            value = (
                Concrete(None)
                if stmt.value is None
                else self._eval(stmt.value, state)
            )
            self._frame.returns.append((state.copy(), value))
            state.alive = False
            return state
        if isinstance(stmt, ast.Break):
            if not self._frame.loops:
                raise _Top("break outside loop")
            self._frame.loops[-1].breaks.append(state.copy())
            state.alive = False
            return state
        if isinstance(stmt, ast.Continue):
            if not self._frame.loops:
                raise _Top("continue outside loop")
            self._frame.loops[-1].continues.append(state.copy())
            state.alive = False
            return state
        if isinstance(stmt, ast.Pass):
            return state
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None and _contains_yield(stmt.exc):
                raise _Top("yield inside raise operand")
            state.alive = False
            return state
        if isinstance(stmt, ast.Assert):
            self._eval(stmt.test, state)
            return state
        if isinstance(stmt, ast.FunctionDef):
            self._exec_functiondef(stmt, state)
            return state
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                state.env[bound] = UNKNOWN
            return state
        if isinstance(stmt, (ast.Global, ast.Nonlocal)):
            raise _Top("global/nonlocal rebinding is not analyzable")
        raise _Top(f"unsupported statement {type(stmt).__name__}")

    def _exec_functiondef(self, stmt: ast.FunctionDef, state: _AbsState) -> None:
        if stmt.decorator_list:
            raise _Top(f"decorated nested function {stmt.name!r}")
        defaults = tuple(self._eval(d, state) for d in stmt.args.defaults)
        sf = _StaticFunc(
            name=stmt.name,
            node=stmt,
            snapshot=dict(state.env),
            outer=self._frame.resolver,
            defaults=defaults,
            is_generator=_is_generator_node(stmt),
        )
        state.env[stmt.name] = Concrete(sf)

    def _exec_if(self, stmt: ast.If, state: _AbsState) -> _AbsState:
        cond = self._eval(stmt.test, state)
        truth = _truth(cond)
        if truth is True:
            return self._exec_block(stmt.body, state)
        if truth is False:
            return self._exec_block(stmt.orelse, state)
        then_state = self._exec_block(stmt.body, state.copy())
        else_state = self._exec_block(stmt.orelse, state.copy())
        return _merge_states(then_state, else_state)

    def _exec_loop_body(
        self,
        body: Sequence[ast.stmt],
        state: _AbsState,
        loop: _LoopCtx,
        bind: Optional[Callable[[_AbsState], None]],
    ) -> _AbsState:
        if bind is not None:
            bind(state)
        out = self._exec_block(body, state)
        # A `continue` rejoins the loop back-edge.
        if loop.continues:
            out = _merge_many([out] + loop.continues)
            loop.continues = []
        return out

    def _run_loop(
        self,
        body: Sequence[ast.stmt],
        orelse: Sequence[ast.stmt],
        state: _AbsState,
        bind: Optional[Callable[[_AbsState], None]],
        may_skip: bool,
    ) -> _AbsState:
        """Abstractly execute a loop: two body passes to a fixpoint-ish
        merge, plus the zero-iteration path when ``may_skip``."""
        loop = _LoopCtx()
        self._frame.loops.append(loop)
        try:
            s1 = self._exec_loop_body(body, state.copy(), loop, bind)
            merged = _merge_states(state.copy(), s1) if may_skip else s1
            s2 = self._exec_loop_body(body, merged.copy(), loop, bind)
            exit_state = _merge_states(merged, s2)
            if loop.breaks:
                exit_state = _merge_many([exit_state] + loop.breaks)
        finally:
            self._frame.loops.pop()
        if orelse and exit_state.alive:
            exit_state = self._exec_block(orelse, exit_state)
        return exit_state

    def _exec_while(self, stmt: ast.While, state: _AbsState) -> _AbsState:
        cond = self._eval(stmt.test, state)
        truth = _truth(cond)
        if truth is False:
            return self._exec_block(stmt.orelse, state) if stmt.orelse else state
        if _contains_yield(stmt.test):
            raise _Top("yield inside loop condition")
        # The condition is effect-free (guarded above), so re-evaluating
        # it per iteration cannot record anything new; skip the binder.
        return self._run_loop(
            stmt.body, stmt.orelse, state, None, may_skip=truth is not True
        )

    def _exec_for(self, stmt: ast.For, state: _AbsState) -> _AbsState:
        iterable = self._eval(stmt.iter, state)
        element = self._element_of(iterable)
        may_skip = True
        poss = _possible(iterable)
        if poss is not None and len(poss) == 1:
            try:
                if len(list(poss[0])) > 0:
                    may_skip = False
            except Exception:
                may_skip = True

        def bind(s: _AbsState) -> None:
            self._assign_target(stmt.target, element, s)

        return self._run_loop(stmt.body, stmt.orelse, state, bind, may_skip)

    def _element_of(self, iterable: AbstractValue) -> AbstractValue:
        poss = _possible(iterable)
        if poss is None:
            return UNKNOWN
        elements: List[Any] = []
        for container in poss:
            if isinstance(container, (_StaticEffect, _GenCall, _BarrierGen)):
                raise _Top("iteration over an effect value")
            try:
                items = list(container)
            except Exception:
                return UNKNOWN
            if len(items) > 64:
                return UNKNOWN
            elements.extend(items)
        return _value_of(elements) if elements else UNKNOWN

    # -- assignment ---------------------------------------------------

    def _assign_target(
        self, target: ast.expr, value: AbstractValue, state: _AbsState
    ) -> None:
        if isinstance(target, ast.Name):
            state.env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            names = target.elts
            poss = _possible(value)
            unpacked: Optional[List[AbstractValue]] = None
            if poss is not None and not any(
                isinstance(e, ast.Starred) for e in names
            ):
                rows: List[Tuple[Any, ...]] = []
                ok = True
                for v in poss:
                    try:
                        row = tuple(v)
                    except Exception:
                        ok = False
                        break
                    if len(row) != len(names):
                        ok = False
                        break
                    rows.append(row)
                if ok and rows:
                    unpacked = [
                        _value_of([row[i] for row in rows])
                        for i in range(len(names))
                    ]
            for i, sub in enumerate(names):
                sub_value = unpacked[i] if unpacked is not None else UNKNOWN
                if isinstance(sub, ast.Starred):
                    self._assign_target(sub.value, UNKNOWN, state)
                else:
                    self._assign_target(sub, sub_value, state)
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            self._invalidate_root(target, state)
            return
        raise _Top(f"unsupported assignment target {type(target).__name__}")

    def _invalidate_root(self, node: ast.expr, state: _AbsState) -> None:
        cur: ast.expr = node
        while isinstance(cur, (ast.Subscript, ast.Attribute)):
            cur = cur.value
        if isinstance(cur, ast.Name):
            state.env[cur.id] = UNKNOWN
        # A non-name root is a temporary: no environment binding can go
        # stale, so there is nothing to invalidate.

    # -- expressions --------------------------------------------------

    def _load_name(self, name: str, state: _AbsState) -> AbstractValue:
        if name in state.env:
            return state.env[name]
        if name in self._frame.locals:
            return UNKNOWN
        return self._frame.resolver(name)

    def _apply_binop(
        self, op: type, left: AbstractValue, right: AbstractValue
    ) -> AbstractValue:
        fn = _BINOPS.get(op)
        if fn is None:
            return UNKNOWN
        pl = _possible(left)
        pr = _possible(right)
        if pl is None or pr is None or len(pl) * len(pr) > 64:
            return UNKNOWN
        results: List[Any] = []
        for a in pl:
            for b in pr:
                try:
                    results.append(fn(a, b))
                except Exception:
                    return UNKNOWN
        return _value_of(results)

    def _eval(self, node: ast.expr, state: _AbsState) -> AbstractValue:
        self._tick()
        if isinstance(node, ast.Constant):
            return Concrete(node.value)
        if isinstance(node, ast.Name):
            return self._load_name(node.id, state)
        if isinstance(node, ast.Yield):
            operand = (
                Concrete(None)
                if node.value is None
                else self._eval(node.value, state)
            )
            return self._record_yield(operand, state)
        if isinstance(node, ast.YieldFrom):
            return self._eval_yield_from(node, state)
        if isinstance(node, ast.Call):
            return self._eval_call(node, state)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, state)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, state)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, state)
            right = self._eval(node.right, state)
            return self._apply_binop(type(node.op), left, right)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, state)
            fn = _UNARYOPS.get(type(node.op))
            poss = _possible(operand)
            if fn is None or poss is None:
                return UNKNOWN
            try:
                return _value_of([fn(v) for v in poss])
            except Exception:
                return UNKNOWN
        if isinstance(node, ast.Compare):
            return self._eval_compare(node, state)
        if isinstance(node, ast.BoolOp):
            values = [self._eval(v, state) for v in node.values]
            truths = [_truth(v) for v in values]
            if isinstance(node.op, ast.And):
                if any(t is False for t in truths):
                    return Concrete(False)
                if all(t is True for t in truths):
                    return values[-1]
                return UNKNOWN
            if any(t is True for t in truths):
                return Concrete(True)
            if all(t is False for t in truths):
                return values[-1]
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            cond = self._eval(node.test, state)
            truth = _truth(cond)
            if truth is True:
                return self._eval(node.body, state)
            if truth is False:
                return self._eval(node.orelse, state)
            return _join(
                self._eval(node.body, state), self._eval(node.orelse, state)
            )
        if isinstance(node, (ast.Tuple, ast.List)):
            parts = []
            for elt in node.elts:
                if isinstance(elt, ast.Starred):
                    inner = self._eval(elt.value, state)
                    ip = _possible(inner)
                    if ip is None or len(ip) != 1:
                        return UNKNOWN
                    try:
                        parts.extend(Concrete(v) for v in list(ip[0]))
                    except Exception:
                        return UNKNOWN
                else:
                    parts.append(self._eval(elt, state))
            combos = [_possible(p) for p in parts]
            if any(c is None or len(c) != 1 for c in combos):
                return UNKNOWN
            values = tuple(c[0] for c in combos if c is not None)
            return Concrete(list(values) if isinstance(node, ast.List) else values)
        if isinstance(node, ast.Dict):
            out: Dict[Any, Any] = {}
            for k, v in zip(node.keys, node.values):
                if k is None:
                    return UNKNOWN
                kv = _possible(self._eval(k, state))
                vv = _possible(self._eval(v, state))
                if kv is None or vv is None or len(kv) != 1 or len(vv) != 1:
                    return UNKNOWN
                try:
                    out[kv[0]] = vv[0]
                except Exception:
                    return UNKNOWN
            return Concrete(out)
        if isinstance(node, ast.JoinedStr):
            parts_s: List[str] = []
            for piece in node.values:
                if isinstance(piece, ast.FormattedValue):
                    v = _possible(self._eval(piece.value, state))
                    if v is None or len(v) != 1:
                        return UNKNOWN
                    try:
                        parts_s.append(format(v[0], ""))
                    except Exception:
                        return UNKNOWN
                elif isinstance(piece, ast.Constant):
                    parts_s.append(str(piece.value))
                else:
                    return UNKNOWN
            return Concrete("".join(parts_s))
        if isinstance(node, ast.Lambda):
            raise _Top("lambda in thread body")
        # Anything else (comprehensions, generators, walrus, await...):
        # sound only if no effect can hide inside.
        if _contains_yield(node):
            raise _Top(f"yield inside unsupported {type(node).__name__}")
        return UNKNOWN

    def _eval_compare(self, node: ast.Compare, state: _AbsState) -> AbstractValue:
        left = self._eval(node.left, state)
        result: AbstractValue = Concrete(True)
        for op, comparator in zip(node.ops, node.comparators):
            right = self._eval(comparator, state)
            fn = _CMPOPS.get(type(op))
            pl = _possible(left)
            pr = _possible(right)
            if fn is None or pl is None or pr is None or len(pl) * len(pr) > 64:
                part: AbstractValue = UNKNOWN
            else:
                outcomes: List[Any] = []
                failed = False
                for a in pl:
                    for b in pr:
                        try:
                            outcomes.append(bool(fn(a, b)))
                        except Exception:
                            failed = True
                            break
                    if failed:
                        break
                part = UNKNOWN if failed else _value_of(outcomes)
            # Chain: result AND part.
            rt = _truth(result)
            pt = _truth(part)
            if rt is False or pt is False:
                result = Concrete(False)
            elif rt is True and pt is True:
                result = Concrete(True)
            else:
                result = UNKNOWN
            left = right
        return result

    def _eval_attribute(self, node: ast.Attribute, state: _AbsState) -> AbstractValue:
        obj = self._eval(node.value, state)
        poss = _possible(obj)
        if poss is None:
            # The receiver was evaluated (yields recorded); reading an
            # attribute performs no effect itself.
            return UNKNOWN
        shared = [
            o for o in poss if isinstance(o, (SharedObject, Barrier))
        ]
        if shared and len(shared) != len(poss):
            raise _Top(f"attribute {node.attr!r} on mixed shared/plain values")
        if shared:
            for o in shared:
                if isinstance(o, Barrier):
                    if node.attr == "parties":
                        continue
                    if node.attr != "wait":
                        raise _Top(f"attribute {node.attr!r} on barrier")
                elif isinstance(o, HeapField):
                    raise _Top("direct operation on a heap field")
                else:
                    table = _EFFECT_METHODS.get(type(o))
                    if table is None or node.attr not in table:
                        raise _Top(
                            f"attribute {node.attr!r} on shared object "
                            f"{o.name!r} is not an effect constructor"
                        )
            if node.attr == "parties":
                return _value_of([o.parties for o in shared])
            return Concrete(_EffectMethod(tuple(shared), node.attr))
        results: List[Any] = []
        for o in poss:
            if isinstance(o, (_StaticFunc, _EffectMethod, _GenCall, _BarrierGen)):
                raise _Top(f"attribute {node.attr!r} on analysis value")
            try:
                results.append(getattr(o, node.attr))
            except Exception:
                return UNKNOWN
        return _value_of(results)

    def _eval_subscript(self, node: ast.Subscript, state: _AbsState) -> AbstractValue:
        container = self._eval(node.value, state)
        index = self._eval(node.slice, state)
        pc = _possible(container)
        if pc is None:
            # Container and index were evaluated (yields recorded).
            return UNKNOWN
        pi = _possible(index)
        results: List[Any] = []
        for c in pc:
            if isinstance(c, (_StaticEffect, _GenCall, _BarrierGen)):
                raise _Top("subscript of an effect value")
            if pi is None:
                # Unknown index: all elements are possible (sound for
                # sequences and dicts of bounded size).
                try:
                    if isinstance(c, dict):
                        items = list(c.values())
                    else:
                        items = list(c)
                except Exception:
                    return UNKNOWN
                if len(items) > 64 or not items:
                    return UNKNOWN
                results.extend(items)
            else:
                for i in pi:
                    try:
                        results.append(c[i])
                    except Exception:
                        return UNKNOWN
        return _value_of(results)

    # -- calls --------------------------------------------------------

    def _eval_call(self, node: ast.Call, state: _AbsState) -> AbstractValue:
        func = self._eval(node.func, state)
        pos: List[AbstractValue] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                inner = self._eval(arg.value, state)
                ip = _possible(inner)
                if ip is not None and len(ip) == 1:
                    try:
                        pos.extend(Concrete(v) for v in list(ip[0]))
                        continue
                    except Exception:
                        pass
                raise _Top("unresolvable *args in call")
            pos.append(self._eval(arg, state))
        kw: Dict[str, AbstractValue] = {}
        for keyword in node.keywords:
            if keyword.arg is None:
                raise _Top("**kwargs in call")
            kw[keyword.arg] = self._eval(keyword.value, state)

        pf = _possible(func)
        if pf is None or len(pf) != 1:
            # Every sub-expression (callee, args, kwargs) has been
            # evaluated above, so any yields inside are already
            # recorded; an unresolved plain call cannot emit effects
            # by itself, making UNKNOWN sound here.
            if isinstance(node.func, ast.Attribute):
                self._invalidate_root(node.func, state)
            return UNKNOWN
        callee = pf[0]

        if isinstance(callee, _EffectMethod):
            return Concrete(self._make_effect(callee, pos, kw))
        if callee is _effects_mod.spawn:
            if not pos:
                raise _Top("spawn() with no function argument")
            name_v = kw.get("name")
            name: Optional[str] = None
            if name_v is not None:
                np = _possible(name_v)
                if np is not None and len(np) == 1 and isinstance(np[0], str):
                    name = np[0]
            return Concrete(
                _StaticEffect(
                    EffectKind.SPAWN,
                    spawn_fn=pos[0],
                    spawn_args=tuple(pos[1:]),
                    spawn_name=name,
                )
            )
        if callee is _effects_mod.join:
            return Concrete(_StaticEffect(EffectKind.JOIN))
        if callee is _effects_mod.sched_yield:
            return Concrete(_StaticEffect(EffectKind.YIELD))
        if callee is _effects_mod.alloc:
            return Concrete(_StaticEffect(EffectKind.ALLOC))
        if callee is _program_mod.check:
            return Concrete(None)
        if callee in _SAFE_BUILTINS:
            arg_poss = [_possible(a) for a in pos]
            kw_poss = {k: _possible(v) for k, v in kw.items()}
            if all(p is not None and len(p) == 1 for p in arg_poss) and all(
                p is not None and len(p) == 1 for p in kw_poss.values()
            ):
                concrete_args = [p[0] for p in arg_poss if p is not None]
                concrete_kw = {
                    k: p[0] for k, p in kw_poss.items() if p is not None
                }
                try:
                    result = callee(*concrete_args, **concrete_kw)
                    if callee in (zip, enumerate, reversed):
                        result = tuple(result)
                    return Concrete(result)
                except Exception:
                    return UNKNOWN
            return UNKNOWN
        if isinstance(callee, _StaticFunc):
            self._check_snapshot(callee, state)
            if callee.is_generator:
                return Concrete(_GenCall(callee, tuple(pos), kw))
            new_state, ret = self._run_callable(callee, pos, kw, state)
            state.may_held = new_state.may_held
            state.must_held = new_state.must_held
            state.alive = new_state.alive
            return ret
        if inspect.isgeneratorfunction(callee):
            return Concrete(_GenCall(callee, tuple(pos), kw))
        if isinstance(callee, Barrier):
            raise _Top("barrier object called directly")
        # Any other call: plain Python code.  It cannot emit effects
        # (effects only happen at a yield), so UNKNOWN is sound -- but a
        # method call may mutate a tracked container, so invalidate the
        # receiver.
        if isinstance(node.func, ast.Attribute):
            self._invalidate_root(node.func, state)
        return UNKNOWN

    def _check_snapshot(self, sf: _StaticFunc, state: _AbsState) -> None:
        """Reject def-to-call rebinding of a closed-over local."""
        for name, captured in sf.snapshot.items():
            current = state.env.get(name)
            if current is None:
                continue
            if not _same_abstract(captured, current):
                raise _Top(
                    f"local {name!r} rebound between definition and call "
                    f"of {sf.name!r}"
                )

    def _make_effect(
        self,
        method: _EffectMethod,
        pos: Sequence[AbstractValue],
        kw: Mapping[str, AbstractValue],
    ) -> Any:
        objs = method.objects
        if any(isinstance(o, Barrier) for o in objs):
            if len(objs) != 1:
                raise _Top("barrier wait with ambiguous receiver")
            return _BarrierGen(objs[0])
        if kw:
            raise _Top("keyword arguments to an effect constructor")
        kinds: Set[EffectKind] = set()
        targets: List[Any] = []
        for o in objs:
            table = _EFFECT_METHODS[type(o)]
            kinds.add(table[method.attr])
        if len(kinds) != 1:
            raise _Top(f"ambiguous effect kind for method {method.attr!r}")
        kind = kinds.pop()
        if kind in (EffectKind.HEAP_READ, EffectKind.HEAP_WRITE):
            if not pos:
                raise _Top("heap access without a field name")
            fields = _possible(pos[0])
            if fields is None:
                # Unknown field: every field of the object is possible.
                for o in objs:
                    targets.extend(o.fields.values())
            else:
                for o in objs:
                    for f in fields:
                        hf = o.fields.get(f)
                        if hf is None:
                            raise _Top(
                                f"unknown field {f!r} of heap object {o.name!r}"
                            )
                        targets.append(hf)
            return _StaticEffect(kind, tuple(targets))
        return _StaticEffect(kind, tuple(objs))

    # -- yields (effect recording) ------------------------------------

    def _record_yield(self, operand: AbstractValue, state: _AbsState) -> AbstractValue:
        poss = _possible(operand)
        if poss is None:
            raise _Top("yield of an unresolved effect")
        effects: List[_StaticEffect] = []
        for p in poss:
            if isinstance(p, _StaticEffect):
                effects.append(p)
            elif isinstance(p, (_GenCall, _BarrierGen)):
                raise _Top("generator yielded directly (use `yield from`)")
            else:
                raise _Top(f"yield of a non-effect value {p!r}")
        if len(effects) == 1:
            self._apply_effect(effects[0], state)
        else:
            branches: List[_AbsState] = []
            for eff in effects:
                s = state.copy()
                self._apply_effect(eff, s)
                branches.append(s)
            merged = _merge_many(branches)
            state.may_held = merged.may_held
            state.must_held = merged.must_held
        return UNKNOWN

    def _eval_yield_from(self, node: ast.YieldFrom, state: _AbsState) -> AbstractValue:
        operand = self._eval(node.value, state)
        poss = _possible(operand)
        if poss is None or len(poss) != 1:
            raise _Top("yield from an unresolved generator")
        gen = poss[0]
        if isinstance(gen, _BarrierGen):
            barrier = gen.barrier
            count_eff = _StaticEffect(EffectKind.ATOMIC_ADD, (barrier._count,))
            rel_eff = _StaticEffect(EffectKind.SEM_RELEASE, (barrier._sem,))
            acq_eff = _StaticEffect(EffectKind.SEM_ACQUIRE, (barrier._sem,))
            self._apply_effect(count_eff, state)
            self._apply_effect(rel_eff, state)
            self._apply_effect(acq_eff, state)
            return Concrete(None)
        if isinstance(gen, _GenCall):
            new_state, ret = self._run_callable(gen.fn, gen.args, gen.kwargs, state)
            state.may_held = new_state.may_held
            state.must_held = new_state.must_held
            state.alive = new_state.alive
            return ret
        raise _Top(f"yield from a non-generator value {gen!r}")

    # -- effect application -------------------------------------------

    def _record_access(
        self, kind: EffectKind, target: Any, state: _AbsState
    ) -> None:
        name = getattr(target, "name", None)
        if name is None:
            return
        self.collector.accesses.append(
            StaticAccess(
                kind=kind,
                variable=name,
                is_write=kind in _WRITE_KINDS,
                must_locks=frozenset(state.must_held),
            )
        )

    def _apply_effect(self, eff: _StaticEffect, state: _AbsState) -> None:
        kind = eff.kind
        if kind is EffectKind.SPAWN:
            self._register_spawn(eff)
            return
        if kind in (EffectKind.JOIN, EffectKind.YIELD, EffectKind.ALLOC):
            return
        targets = eff.targets
        single = len(targets) == 1
        for target in targets:
            self._record_access(kind, target, state)
        if kind is EffectKind.ACQUIRE or kind is EffectKind.RW_ACQUIRE_WRITE:
            for target in targets:
                for held in state.may_held:
                    if held != target.name:
                        self.collector.lock_edges.add((held, target.name))
                reentrant = isinstance(target, CriticalSection)
                if (
                    single
                    and not reentrant
                    and kind is EffectKind.ACQUIRE
                    and target.name in state.must_held
                ):
                    self.collector.double_acquires.append(target.name)
                state.may_held.add(target.name)
            if single:
                state.must_held.add(targets[0].name)
            return
        if kind is EffectKind.RW_ACQUIRE_READ:
            for target in targets:
                for held in state.may_held:
                    if held != target.name:
                        self.collector.lock_edges.add((held, target.name))
                state.may_held.add(target.name)
            return
        if kind is EffectKind.TRY_ACQUIRE:
            for target in targets:
                state.may_held.add(target.name)
            return
        if kind is EffectKind.RELEASE or kind is EffectKind.RW_RELEASE:
            for target in targets:
                state.must_held.discard(target.name)
                if single:
                    state.may_held.discard(target.name)
            return
        if kind is EffectKind.WAIT:
            for target in targets:
                self.collector.waited_events.add(target.name)
            return
        if kind is EffectKind.SIGNAL:
            for target in targets:
                self.collector.signalled_events.add(target.name)
            return
        # RESET, SEM_*, CV_*, data/atomic/heap accesses, FREE: the
        # access record above is all we track.
        return

    def _register_spawn(self, eff: _StaticEffect) -> None:
        fns = _possible(eff.spawn_fn)
        if fns is None:
            raise _Top("spawn of an unresolved function")
        for fn in fns:
            if isinstance(fn, _StaticFunc):
                if not fn.is_generator:
                    raise _Top(f"spawn of non-generator {fn.name!r}")
            elif not inspect.isgeneratorfunction(fn):
                raise _Top(f"spawn of non-generator {fn!r}")
            self.collector.spawns.append((fn, eff.spawn_args, eff.spawn_name))


def _same_abstract(a: AbstractValue, b: AbstractValue) -> bool:
    if a is b:
        return True
    if isinstance(a, Concrete) and isinstance(b, Concrete):
        return _same_runtime_value(a.value, b.value)
    if isinstance(a, AnyOf) and isinstance(b, AnyOf):
        return a == b
    return False


# ---------------------------------------------------------------------------
# Program-level analysis.
# ---------------------------------------------------------------------------


def _category(obj: Any) -> str:
    if isinstance(obj, AtomicVar):
        return "atomic"
    if isinstance(obj, SharedVar):
        return "data"
    if isinstance(obj, HeapField):
        return "field"
    if isinstance(obj, HeapRef):
        return "heap"
    if isinstance(obj, Mutex):
        return "mutex"
    if isinstance(obj, CriticalSection):
        return "critsec"
    if isinstance(obj, Event):
        return "event"
    if isinstance(obj, Semaphore):
        return "semaphore"
    if isinstance(obj, CondVar):
        return "condvar"
    if isinstance(obj, RWLock):
        return "rwlock"
    return "object"


@dataclass(eq=False)
class _ChildSpec:
    label: str
    fn: Any
    args: Tuple[AbstractValue, ...]
    dirty: bool = True
    summary: Optional[ThreadSummary] = None


def _spawn_key(fn: Any) -> Any:
    if isinstance(fn, _StaticFunc):
        return fn.node
    return fn.__code__


def _analyze_one(
    label: str,
    fn: Any,
    args: Tuple[AbstractValue, ...],
    multi_instance: bool,
) -> Tuple[ThreadSummary, List[Tuple[Any, Tuple[AbstractValue, ...], Optional[str]]]]:
    collector = _Collector()
    interp = _Interpreter(collector)
    state = _AbsState({}, set(), set())
    try:
        exit_state, _ = interp._run_callable(fn, list(args), {}, state)
        exit_unreleased = (
            frozenset(exit_state.must_held) if exit_state.alive else frozenset()
        )
    except _Top as top:
        return ThreadSummary.make_top(label, top.reason, multi_instance), []
    except RecursionError:  # pragma: no cover - defensive
        return ThreadSummary.make_top(label, "analyzer recursion limit", multi_instance), []
    except Exception as exc:
        # Safety net: a bug in the analyzer must degrade to TOP, never
        # to a silently wrong summary.
        reason = f"analyzer error: {type(exc).__name__}: {exc}"
        return ThreadSummary.make_top(label, reason, multi_instance), []
    summary = ThreadSummary(
        label=label,
        top=False,
        top_reason="",
        multi_instance=multi_instance,
        accesses=tuple(collector.accesses),
        lock_edges=frozenset(collector.lock_edges),
        exit_unreleased=exit_unreleased,
        double_acquires=tuple(collector.double_acquires),
        waited_events=frozenset(collector.waited_events),
        signalled_events=frozenset(collector.signalled_events),
        spawned_labels=tuple(
            name or getattr(fn_, "name", None) or getattr(fn_, "__name__", "child")
            for fn_, _, name in collector.spawns
        ),
    )
    return summary, collector.spawns


def analyze_program(program: Program) -> ProgramSummary:
    """Compute sound static summaries for every thread of ``program``.

    Instantiates the program once (running only its setup function, no
    thread body executes) to learn the shared-object catalog and the
    root thread specs, then abstractly interprets each thread body and,
    transitively, every body it can ``spawn``.

    :class:`~repro.invivo.program.InvivoProgram` instances are routed
    to the source-level interpreter in :mod:`repro.analysis.invivo`,
    which understands the adapter vocabulary instead of the effect DSL.
    """
    from ..invivo.program import InvivoProgram

    if isinstance(program, InvivoProgram):
        from .invivo import analyze_invivo_program

        return analyze_invivo_program(program)
    world, specs = program.instantiate()
    variables: Dict[str, str] = {}
    events_initially_set: Dict[str, bool] = {}
    for obj in world.objects:
        variables[obj.name] = _category(obj)
        if isinstance(obj, Event):
            events_initially_set[obj.name] = obj.is_set

    summaries: List[ThreadSummary] = []
    children: Dict[Any, _ChildSpec] = {}
    used_labels: Set[str] = set()

    def unique_label(base: str) -> str:
        label = base
        n = 2
        while label in used_labels:
            label = f"{base}~{n}"
            n += 1
        used_labels.add(label)
        return label

    def note_spawns(
        parent_label: str,
        spawns: List[Tuple[Any, Tuple[AbstractValue, ...], Optional[str]]],
    ) -> None:
        for fn, args, name in spawns:
            key = _spawn_key(fn)
            fn_name = (
                fn.name if isinstance(fn, _StaticFunc) else fn.__name__
            )
            spec = children.get(key)
            if spec is None:
                label = unique_label(name or f"{parent_label}/{fn_name}")
                children[key] = _ChildSpec(label, fn, tuple(args))
                continue
            # The same body spawned again: join the argument vectors so
            # one summary covers every instance.
            if len(spec.args) != len(args):
                joined: Tuple[AbstractValue, ...] = tuple(
                    UNKNOWN for _ in range(max(len(spec.args), len(args)))
                )
            else:
                joined = tuple(_join(a, b) for a, b in zip(spec.args, args))
            if not all(_same_abstract(a, b) for a, b in zip(joined, spec.args)) or len(
                joined
            ) != len(spec.args):
                spec.args = joined
                spec.dirty = True

    for label, body, args in specs:
        root_label = unique_label(label)
        summary, spawns = _analyze_one(
            root_label,
            body,
            tuple(Concrete(a) for a in args),
            multi_instance=False,
        )
        summaries.append(summary)
        note_spawns(root_label, spawns)

    # Iterate child analyses to a fixpoint over joined spawn arguments.
    for _ in range(10_000):
        dirty = [spec for spec in children.values() if spec.dirty]
        if not dirty:
            break
        for spec in dirty:
            spec.dirty = False
            summary, spawns = _analyze_one(
                spec.label,
                spec.fn,
                spec.args,
                multi_instance=True,
            )
            spec.summary = summary
            note_spawns(spec.label, spawns)
    else:  # pragma: no cover - defensive
        for spec in children.values():
            if spec.dirty:
                spec.summary = ThreadSummary.make_top(
                    spec.label, "spawn fixpoint did not converge", True
                )

    for spec in children.values():
        if spec.summary is not None:
            summaries.append(spec.summary)

    return ProgramSummary(
        program=program.name,
        threads=tuple(summaries),
        variables=variables,
        events_initially_set=events_initially_set,
    )
