"""DSL lint: static anomaly findings over effect-program summaries.

Findings are *warnings about likely mistakes*, not bug reports: the
dynamic checkers stay the ground truth.  Codes:

``unreleased-lock``
    A thread can reach its normal exit while definitely holding a lock
    (the lock is in ``must_held`` on some fall-off-the-end path).
``double-acquire``
    A thread acquires a non-re-entrant mutex it definitely already
    holds -- a guaranteed self-deadlock on that path.
``wait-never-set``
    Some thread waits on an event that starts unset and that no thread
    summary ever signals.  Suppressed when any summary is TOP (the TOP
    thread might signal it).
``lock-cycle``
    The static lock-order graph has a cycle (see
    :mod:`repro.analysis.lockgraph`): a potential ABBA deadlock.
``hidden-state``
    In-vivo only: a plain attribute or module global is written by more
    than one checked thread instance without a ``Shared``/``Atomic``
    wrapper -- invisible to race detection and state fingerprints (see
    ``docs/invivo.md``).  Suppressed when any summary is TOP (writes of
    the TOP thread are unknown).

Each finding carries a stable ``fingerprint`` so a committed baseline
file can distinguish known findings (e.g. in the intentionally buggy
builtin programs) from regressions; ``repro lint`` exits nonzero only
on non-baselined findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from .lockgraph import LockOrderGraph
from .summary import ProgramSummary

__all__ = ["LintFinding", "lint_program", "load_baseline", "format_baseline"]


@dataclass(frozen=True)
class LintFinding:
    """One static anomaly in a program's synchronization structure."""

    program: str
    code: str
    subject: str
    message: str

    @property
    def fingerprint(self) -> str:
        """A stable identity for baselining: program/code/subject."""
        return f"{self.program}:{self.code}:{self.subject}"

    def describe(self) -> str:
        return f"[{self.code}] {self.message}"


def lint_program(
    summary: ProgramSummary, graph: LockOrderGraph | None = None
) -> Tuple[LintFinding, ...]:
    """All lint findings for one analyzed program, sorted."""
    if graph is None:
        graph = LockOrderGraph.from_summary(summary)
    findings: List[LintFinding] = []
    program = summary.program

    for thread in summary.threads:
        for lock in sorted(thread.exit_unreleased):
            findings.append(
                LintFinding(
                    program=program,
                    code="unreleased-lock",
                    subject=f"{thread.label}:{lock}",
                    message=(
                        f"thread {thread.label!r} can exit while still "
                        f"holding {lock!r}"
                    ),
                )
            )
        for lock in sorted(set(thread.double_acquires)):
            findings.append(
                LintFinding(
                    program=program,
                    code="double-acquire",
                    subject=f"{thread.label}:{lock}",
                    message=(
                        f"thread {thread.label!r} acquires non-re-entrant "
                        f"mutex {lock!r} while already holding it "
                        "(self-deadlock)"
                    ),
                )
            )

    if not summary.any_top:
        signalled: Set[str] = set()
        for thread in summary.threads:
            signalled.update(thread.signalled_events)
        for thread in summary.threads:
            for event in sorted(thread.waited_events):
                if summary.events_initially_set.get(event, False):
                    continue
                if event in signalled:
                    continue
                if event not in summary.events_initially_set:
                    # Not a plain event (e.g. an engine-internal wait);
                    # out of scope for this lint.
                    continue
                findings.append(
                    LintFinding(
                        program=program,
                        code="wait-never-set",
                        subject=f"{thread.label}:{event}",
                        message=(
                            f"thread {thread.label!r} waits on event "
                            f"{event!r} which starts unset and is never "
                            "signalled by any thread"
                        ),
                    )
                )

    if not summary.any_top:
        writers: Dict[str, int] = {}
        for thread in summary.threads:
            per_instance = 2 if thread.multi_instance else 1
            for key in thread.hidden_writes:
                writers[key] = writers.get(key, 0) + per_instance
        for key in sorted(writers):
            if writers[key] < 2:
                continue
            findings.append(
                LintFinding(
                    program=program,
                    code="hidden-state",
                    subject=key,
                    message=(
                        f"plain state {key!r} is written by more than "
                        "one checked thread without a Shared/Atomic "
                        "wrapper; the checker cannot see these accesses"
                    ),
                )
            )

    for cycle in graph.cycles():
        findings.append(
            LintFinding(
                program=program,
                code="lock-cycle",
                subject="->".join(cycle.locks),
                message=cycle.describe(),
            )
        )

    return tuple(
        sorted(findings, key=lambda f: (f.code, f.subject, f.message))
    )


def load_baseline(text: str) -> Set[str]:
    """Parse a baseline file: one fingerprint per line, ``#`` comments."""
    out: Set[str] = set()
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        out.add(line)
    return out


def format_baseline(findings: Iterable[LintFinding]) -> str:
    """Render findings as a baseline file body (sorted fingerprints)."""
    lines = sorted({f.fingerprint for f in findings})
    header = [
        "# repro lint baseline: known findings, one fingerprint per line.",
        "# Regenerate with: repro lint --all --update-baseline <this file>",
    ]
    return "\n".join(header + lines) + "\n"
