"""repro.analysis: static analysis over effect programs.

The subsystem has three layers (see ``docs/analysis.md``):

1. :mod:`repro.analysis.summary` -- per-thread access summaries via
   abstract interpretation of the thread-body ASTs, with a sound TOP
   fallback for anything unresolvable.
2. :mod:`repro.analysis.lockgraph` / :mod:`repro.analysis.racecand` /
   :mod:`repro.analysis.lint` -- consumers of the summaries: the lock
   acquisition-order graph with potential-deadlock cycles, Eraser-style
   race candidates, and DSL lint findings.
3. :class:`ProgramAnalysis` -- the facade the checkers consume: proven
   thread-local variables drive the opt-in search-space reduction
   (``ChessChecker(..., analysis=True)``), race candidates drive
   preemption prioritization in ICB/PCT.

Everything is computed once per program, before any execution runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import FrozenSet, List, Tuple

from ..core.program import Program
from .lint import LintFinding, format_baseline, lint_program, load_baseline
from .lockgraph import LockCycle, LockOrderGraph
from .racecand import RaceCandidate, race_candidates
from .summary import (
    PRUNABLE_KINDS,
    ProgramSummary,
    StaticAccess,
    ThreadSummary,
    analyze_program,
)

__all__ = [
    "PRUNABLE_KINDS",
    "LintFinding",
    "LockCycle",
    "LockOrderGraph",
    "ProgramAnalysis",
    "ProgramSummary",
    "RaceCandidate",
    "StaticAccess",
    "ThreadSummary",
    "analyze",
    "analyze_program",
    "format_baseline",
    "lint_program",
    "load_baseline",
    "race_candidates",
]


@dataclass(frozen=True)
class ProgramAnalysis:
    """Everything the static pass knows about one program."""

    summary: ProgramSummary
    graph: LockOrderGraph
    candidates: Tuple[RaceCandidate, ...]
    findings: Tuple[LintFinding, ...]

    @classmethod
    def of(cls, program: Program) -> "ProgramAnalysis":
        summary = analyze_program(program)
        graph = LockOrderGraph.from_summary(summary)
        candidates = race_candidates(summary)
        findings = lint_program(summary, graph)
        return cls(
            summary=summary,
            graph=graph,
            candidates=candidates,
            findings=findings,
        )

    # -- facts the search layer consumes ------------------------------

    @property
    def program(self) -> str:
        return self.summary.program

    @property
    def reduction_enabled(self) -> bool:
        """Whether the scheduling-point reduction may be applied.

        Any TOP summary disables it: a TOP thread may access anything,
        so no variable can be proven thread-local.
        """
        return not self.summary.any_top

    @property
    def proven_local(self) -> FrozenSet[str]:
        """Shared-object names accessed by at most one thread instance."""
        return self.summary.proven_local

    @cached_property
    def hot_variables(self) -> FrozenSet[str]:
        """Variables appearing in some race candidate (for heuristics)."""
        return frozenset(c.variable for c in self.candidates)

    # -- reporting ----------------------------------------------------

    @cached_property
    def predicted_reduction(self) -> Tuple[int, int]:
        """``(prunable, total)`` static accesses: the predicted share of
        scheduling points the reduction can skip deferrals at."""
        total = 0
        prunable = 0
        local = self.proven_local
        for thread in self.summary.threads:
            for access in thread.accesses:
                total += 1
                if access.kind in PRUNABLE_KINDS and access.variable in local:
                    prunable += 1
        return prunable, total

    def render(self) -> str:
        """A human-readable report for ``repro analyze``."""
        lines: List[str] = []
        summary = self.summary
        lines.append(f"program: {summary.program}")
        lines.append(
            f"shared objects: {len(summary.variables)} "
            f"({sum(1 for c in summary.variables.values() if c in ('data', 'field'))} data)"
        )
        lines.append("")
        lines.append("thread summaries:")
        for thread in summary.threads:
            flavor = " (multi-instance)" if thread.multi_instance else ""
            if thread.top:
                lines.append(
                    f"  {thread.label}{flavor}: TOP -- {thread.top_reason}"
                )
                continue
            touched = ", ".join(sorted(thread.touched)) or "(nothing)"
            lines.append(f"  {thread.label}{flavor}: touches {touched}")
            if thread.exit_unreleased:
                held = ", ".join(sorted(thread.exit_unreleased))
                lines.append(f"    holds at exit: {held}")
        lines.append("")
        local = sorted(self.proven_local)
        if not self.reduction_enabled:
            lines.append(
                "proven thread-local: (reduction disabled: some summary is TOP)"
            )
        else:
            lines.append(
                "proven thread-local: " + (", ".join(local) or "(none)")
            )
        prunable, total = self.predicted_reduction
        if total:
            share = 100.0 * prunable / total
            lines.append(
                f"predicted scheduling-point reduction: {prunable}/{total} "
                f"static accesses ({share:.0f}%)"
            )
        lines.append("")
        lines.append(f"lock-order edges: {len(self.graph.edges)}")
        for held, acquired in sorted(self.graph.edges):
            who = ", ".join(self.graph.contributors.get((held, acquired), ()))
            lines.append(f"  {held} -> {acquired}  [{who}]")
        cycles = self.graph.cycles()
        if cycles:
            lines.append("lock cycles:")
            for cycle in cycles:
                lines.append(f"  {cycle.describe()}")
        lines.append("")
        lines.append(f"race candidates: {len(self.candidates)}")
        for candidate in self.candidates:
            lines.append(f"  {candidate.describe()}")
        if self.findings:
            lines.append("")
            lines.append(f"lint findings: {len(self.findings)}")
            for finding in self.findings:
                lines.append(f"  {finding.describe()}")
        return "\n".join(lines)


def analyze(program: Program) -> ProgramAnalysis:
    """Convenience wrapper: ``ProgramAnalysis.of(program)``."""
    return ProgramAnalysis.of(program)
