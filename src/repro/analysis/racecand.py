"""Eraser-style static race candidates.

A *race candidate* is a pair of threads and a data variable where (1)
both threads may access the variable, (2) at least one side may write
it, and (3) the intersection of the locksets the two accesses are
*definitely* protected by is empty.  Because the per-access locksets
come from the ``must_held`` under-approximation of
:mod:`repro.analysis.summary`, a smaller must-lockset can only *add*
candidates; combined with accesses being over-approximated, the
candidate set is a guaranteed superset of every data race the dynamic
happens-before detector in :mod:`repro.races` can ever report.  (The
cross-validation test in ``tests/analysis`` pins this invariant to the
actual detectors.)

Only plain data variables race (``data`` and ``field`` categories);
atomic variables and synchronization objects are race-free by
construction, matching the dynamic detector which only checks
non-sync accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from ..core.effects import EffectKind
from .summary import DATA_CATEGORIES, ProgramSummary, StaticAccess, ThreadSummary

__all__ = ["RaceCandidate", "race_candidates"]

_DATA_ACCESS_KINDS = frozenset(
    {
        EffectKind.READ,
        EffectKind.WRITE,
        EffectKind.HEAP_READ,
        EffectKind.HEAP_WRITE,
        EffectKind.FREE,
    }
)


@dataclass(frozen=True)
class RaceCandidate:
    """A possibly-racing (variable, thread pair) combination."""

    variable: str
    first_thread: str
    second_thread: str

    def describe(self) -> str:
        if self.first_thread == self.second_thread:
            who = f"two instances of {self.first_thread}"
        else:
            who = f"{self.first_thread} and {self.second_thread}"
        return f"race candidate: {self.variable} between {who}"


def _data_accesses(
    thread: ThreadSummary, data_vars: FrozenSet[str]
) -> Dict[str, List[StaticAccess]]:
    out: Dict[str, List[StaticAccess]] = {}
    for access in thread.accesses:
        if access.kind in _DATA_ACCESS_KINDS and access.variable in data_vars:
            out.setdefault(access.variable, []).append(access)
    return out


def _may_race(a: StaticAccess, b: StaticAccess) -> bool:
    if not (a.is_write or b.is_write):
        return False
    return not (a.must_locks & b.must_locks)


def race_candidates(summary: ProgramSummary) -> Tuple[RaceCandidate, ...]:
    """All (variable, thread-pair) candidates, sorted and deduplicated.

    A TOP thread may access every data variable unlocked, so it forms a
    candidate with every other thread (and with itself: a TOP summary
    may describe a multi-instance body) on every data variable.
    """
    data_vars = frozenset(
        name
        for name, category in summary.variables.items()
        if category in DATA_CATEGORIES
    )
    threads = summary.threads
    per_thread = [_data_accesses(t, data_vars) for t in threads]

    found: Set[Tuple[str, str, str]] = set()

    def note(variable: str, first: str, second: str) -> None:
        a, b = sorted((first, second))
        found.add((variable, a, b))

    for i, ti in enumerate(threads):
        # Self-candidates: a body that can run as several instances
        # races with its sibling instances exactly like a distinct
        # thread would.
        if ti.multi_instance:
            if ti.top:
                for variable in data_vars:
                    note(variable, ti.label, ti.label)
            else:
                for variable, accesses in per_thread[i].items():
                    if any(
                        _may_race(a, b) for a in accesses for b in accesses
                    ):
                        note(variable, ti.label, ti.label)
        for j in range(i + 1, len(threads)):
            tj = threads[j]
            if ti.top and tj.top:
                for variable in data_vars:
                    note(variable, ti.label, tj.label)
                continue
            if ti.top or tj.top:
                concrete = per_thread[j] if ti.top else per_thread[i]
                concrete_thread = tj if ti.top else ti
                top_thread = ti if ti.top else tj
                # The TOP side may read and write everything with no
                # locks held, so any access on the concrete side forms
                # a candidate.
                for variable in concrete:
                    note(variable, top_thread.label, concrete_thread.label)
                # Variables only the TOP side touches still race
                # against its own potential second instance, handled in
                # the self-candidate pass above.
                continue
            shared = set(per_thread[i]) & set(per_thread[j])
            for variable in shared:
                if any(
                    _may_race(a, b)
                    for a in per_thread[i][variable]
                    for b in per_thread[j][variable]
                ):
                    note(variable, ti.label, tj.label)

    return tuple(
        RaceCandidate(variable, a, b) for variable, a, b in sorted(found)
    )
