"""The static lock acquisition-order graph.

Nodes are lock names (mutexes, critical sections, reader-writer
locks); a directed edge ``a -> b`` means some thread may acquire ``b``
while it may already hold ``a``.  Edges are computed from the
``may_held`` over-approximation of :mod:`repro.analysis.summary`, so
every ordering any execution can exhibit is present in the graph.

A cycle in this graph is the classic necessary condition for an
ABBA-style deadlock, reported as a *potential-deadlock* warning.  The
converse does not hold (a gate elsewhere may make the cycle
unreachable), which is why these are warnings feeding ``repro lint``
rather than bug reports: the dynamic checkers remain the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from .summary import LOCK_CATEGORIES, ProgramSummary

__all__ = ["LockCycle", "LockOrderGraph"]


@dataclass(frozen=True)
class LockCycle:
    """A cyclic acquisition order: a potential deadlock."""

    #: The lock names along the cycle, rotated to start at the
    #: lexicographically smallest (a canonical form, so the same cycle
    #: found from different start points compares equal).
    locks: Tuple[str, ...]
    #: Labels of threads contributing at least one edge of the cycle.
    threads: Tuple[str, ...]

    def describe(self) -> str:
        ring = " -> ".join(self.locks + (self.locks[0],))
        who = ", ".join(self.threads)
        return f"potential deadlock: lock cycle {ring} (threads: {who})"


@dataclass(frozen=True)
class LockOrderGraph:
    """The union of every thread's static acquisition edges."""

    #: Every (held, acquired) pair any thread may exhibit.
    edges: FrozenSet[Tuple[str, str]]
    #: edge -> labels of the threads that may produce it.
    contributors: Dict[Tuple[str, str], Tuple[str, ...]]

    @classmethod
    def from_summary(cls, summary: ProgramSummary) -> "LockOrderGraph":
        lock_names = {
            name
            for name, category in summary.variables.items()
            if category in LOCK_CATEGORIES
        }
        edges: Set[Tuple[str, str]] = set()
        contributors: Dict[Tuple[str, str], List[str]] = {}
        for thread in summary.threads:
            for edge in thread.lock_edges:
                held, acquired = edge
                if held not in lock_names or acquired not in lock_names:
                    continue
                edges.add(edge)
                contributors.setdefault(edge, []).append(thread.label)
        return cls(
            edges=frozenset(edges),
            contributors={
                edge: tuple(sorted(labels))
                for edge, labels in contributors.items()
            },
        )

    def cycles(self) -> Tuple[LockCycle, ...]:
        """Every elementary cycle, canonicalized and deduplicated.

        The graphs here are tiny (a handful of locks), so a simple
        DFS-based enumeration is plenty.
        """
        adjacency: Dict[str, List[str]] = {}
        for held, acquired in self.edges:
            adjacency.setdefault(held, []).append(acquired)
        for targets in adjacency.values():
            targets.sort()

        found: Dict[Tuple[str, ...], LockCycle] = {}

        def canonical(path: Tuple[str, ...]) -> Tuple[str, ...]:
            pivot = min(range(len(path)), key=lambda i: path[i])
            return path[pivot:] + path[:pivot]

        def walk(start: str, node: str, path: List[str]) -> None:
            for nxt in adjacency.get(node, ()):
                if nxt == start:
                    ring = canonical(tuple(path))
                    if ring not in found:
                        labels: Set[str] = set()
                        cycle_edges = list(zip(path, path[1:] + [path[0]]))
                        for edge in cycle_edges:
                            labels.update(self.contributors.get(edge, ()))
                        found[ring] = LockCycle(ring, tuple(sorted(labels)))
                elif nxt > start and nxt not in path:
                    # Only enumerate cycles whose smallest node is the
                    # start, so each elementary cycle is found once.
                    walk(start, nxt, path + [nxt])

        for start in sorted(adjacency):
            walk(start, start, [start])
        return tuple(found[ring] for ring in sorted(found))
