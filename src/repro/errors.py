"""Error types and bug reports for the repro model checkers.

Two kinds of failures flow through the system:

* **Tool errors** (subclasses of :class:`ReproError`) indicate misuse of
  the library itself -- a malformed program, an illegal scheduling
  request, an unhashable shared value.  These raise immediately.

* **Bugs** (instances of :class:`BugReport`) are defects *in the program
  under test* discovered during exploration -- assertion failures,
  deadlocks, data races, use-after-free.  A bug never raises out of the
  engine; it is recorded on the execution and surfaced through the
  search result so that the checker can report the minimal-preemption
  witness schedule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .core.thread import ThreadId


class ReproError(Exception):
    """Base class for all errors raised by the repro library itself."""


class ProgramDefinitionError(ReproError):
    """The program under test is malformed (bad setup, bad thread body)."""


class SchedulingError(ReproError):
    """An illegal scheduling request, e.g. stepping a disabled thread."""


class ReplayDivergenceError(ReproError):
    """A recorded schedule no longer matches the program's behavior.

    This indicates nondeterminism in the program under test, which
    violates the core assumption (Section 2 of the paper) that thread
    scheduling is the only source of nondeterminism.
    """


class ScheduleMismatch(ReplayDivergenceError):
    """A saved witness schedule cannot be replayed against this program.

    Raised (or classified, see :mod:`repro.trace.replay`) when a
    persisted trace is replayed against a program that no longer agrees
    with the recording: the program's thread structure changed, the
    schedule names a thread that is never created, a scheduled thread is
    not enabled where the recording says it ran, or the program
    terminates before the schedule is exhausted.

    Attributes:
        flavor: which way the replay diverged -- one of ``fingerprint``,
            ``unknown-thread``, ``not-enabled``, ``early-termination``.
        step_index: schedule position at which the divergence was
            detected (``-1`` for pre-replay checks such as the program
            fingerprint).
        scheduled: path of the thread the trace wanted to run, if any.
        enabled: paths of the threads actually enabled at that point.
    """

    def __init__(
        self,
        flavor: str,
        message: str,
        step_index: int = -1,
        scheduled: Optional[Tuple[int, ...]] = None,
        enabled: Tuple[Tuple[int, ...], ...] = (),
    ) -> None:
        super().__init__(message)
        self.flavor = flavor
        self.step_index = step_index
        self.scheduled = scheduled
        self.enabled = enabled

    def describe(self) -> str:
        """One-line rendering used by replay reports and the CLI."""
        parts = [f"schedule mismatch ({self.flavor}): {self.args[0]}"]
        if self.step_index >= 0:
            parts.append(f"at step {self.step_index}")
        return " ".join(parts)


class SearchBudgetExceeded(ReproError):
    """Internal control-flow signal: the search budget was exhausted."""


class SearchInterrupted(ReproError):
    """Internal control-flow signal: stop the search immediately.

    Raised when ``stop_on_first_bug`` is set and a bug has been found.
    """


class ProgramAssertionError(AssertionError):
    """Raised by program-under-test code via :func:`repro.check`.

    The engine converts it into a :class:`BugReport` of kind
    ``ASSERTION``; it never escapes the execution engine.
    """

    def __init__(self, message: str = "assertion failed") -> None:
        super().__init__(message)
        self.message = message


class BugKind(enum.Enum):
    """Classification of bugs detectable by the checkers."""

    ASSERTION = "assertion"
    DEADLOCK = "deadlock"
    DATA_RACE = "data-race"
    USE_AFTER_FREE = "use-after-free"
    DOUBLE_FREE = "double-free"
    LOCK_ERROR = "lock-error"
    INVARIANT = "invariant"
    UNCAUGHT_EXCEPTION = "uncaught-exception"
    LIVELOCK = "livelock"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class BugReport:
    """A defect found in the program under test.

    Attributes:
        kind: the bug classification.
        message: human-readable one-line description.
        thread: the thread whose step triggered the bug (``None`` for
            whole-program conditions such as deadlock).
        schedule: the scheduling choices that reproduce the bug.  For
            the stateless checker this is a complete replay recipe.
        preemptions: number of preempting context switches in the
            witness execution (NP in the paper's Appendix A).
        step_index: index of the triggering step within the execution.
        details: extra structured data (e.g. the two racing accesses).
    """

    kind: BugKind
    message: str
    thread: Optional["ThreadId"] = None
    schedule: Tuple["ThreadId", ...] = ()
    preemptions: int = 0
    step_index: int = -1
    details: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    @property
    def signature(self) -> Tuple[Any, ...]:
        """Identity used to deduplicate reports of the same defect.

        Two witnesses of the same bug (different schedules) share a
        signature: the kind, the message and the triggering thread.
        """
        return (self.kind, self.message, self.thread)

    @property
    def identity(self) -> Tuple[Any, ...]:
        """Stable identity of this exact report: kind plus witness.

        Unlike :attr:`signature` it distinguishes different witnesses
        of the same defect, and unlike ``hash()``-derived keys it is
        stable across processes (thread ids compare by path), so
        cross-process deduplication in ``SearchResult.merge`` and the
        determinism tests can rely on it.
        """
        return (self.kind, tuple(t.path for t in self.schedule))

    def describe(self) -> str:
        """Multi-line human-readable rendering of the report."""
        lines = [f"[{self.kind}] {self.message}"]
        if self.thread is not None:
            lines.append(f"  thread:      {self.thread}")
        lines.append(f"  preemptions: {self.preemptions}")
        lines.append(f"  steps:       {len(self.schedule)}")
        if self.schedule:
            rendered = " ".join(str(t) for t in self.schedule)
            lines.append(f"  schedule:    {rendered}")
        for key, value in self.details:
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.message} (preemptions={self.preemptions})"
