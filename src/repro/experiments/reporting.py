"""Plain-text rendering of experiment tables and curves.

The benchmark harness prints the same rows and series the paper
reports; these helpers keep that output readable in a terminal and in
the captured benchmark logs: aligned tables and ASCII line charts with
optional logarithmic y axes (Figures 2, 5 and 6 are log-scale).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Point = Tuple[float, float]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


_MARKERS = "ox+*#@%&"


def render_curves(
    series: Dict[str, List[Point]],
    width: int = 72,
    height: int = 20,
    log_y: bool = False,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render labelled line series as an ASCII chart.

    Each series gets a marker character; the legend maps markers back
    to labels.  With ``log_y`` the vertical axis is logarithmic, as in
    the paper's coverage-growth figures.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if log_y:
        y_floor = min((y for y in ys if y > 0), default=1.0)
        y_min = max(y_min, y_floor)
        y_max = max(y_max, y_min)

    def scale_x(x: float) -> int:
        if x_max == x_min:
            return 0
        return round((x - x_min) / (x_max - x_min) * (width - 1))

    def scale_y(y: float) -> int:
        if log_y:
            y = max(y, y_min)
            lo, hi = math.log10(y_min), math.log10(max(y_max, y_min * 1.0000001))
            frac = 0.0 if hi == lo else (math.log10(y) - lo) / (hi - lo)
        else:
            frac = 0.0 if y_max == y_min else (y - y_min) / (y_max - y_min)
        return round(frac * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (label, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} = {label}")
        for x, y in pts:
            if log_y and y <= 0:
                continue
            col = scale_x(x)
            row = height - 1 - scale_y(y)
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top = f"{y_max:g}"
    bottom = f"{y_min:g}"
    margin = max(len(top), len(bottom)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top.rjust(margin)
        elif i == height - 1:
            prefix = bottom.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    axis = f"{x_min:g}".ljust(width - len(f"{x_max:g}")) + f"{x_max:g}"
    lines.append(" " * (margin + 1) + axis)
    lines.append(" " * (margin + 1) + f"({x_label} vs {y_label}"
                 + (", log y)" if log_y else ")"))
    lines.append("  legend: " + "; ".join(legend))
    return "\n".join(lines)
