"""The bug-exposure experiment (Table 2).

For every benchmark program and every seeded-bug variant, run ICB with
``stop_on_first_bug`` and record the preemption bound at which the bug
is exposed.  Because ICB explores all executions with ``c``
preemptions before any with ``c + 1``, the recorded bound is the
*minimum* number of preemptions that exposes the defect -- the
quantity Table 2 tabulates ("the number of bugs exposed in executions
with exactly c preemptions").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.transition import StateSpace
from ..errors import BugReport
from ..search.icb import IterativeContextBounding
from ..search.strategy import SearchLimits

SpaceFactory = Callable[[], StateSpace]


@dataclass
class BugsByBoundExperiment:
    """Accumulates minimal exposure bounds across benchmark variants."""

    max_bound: int = 4
    max_seconds_per_variant: Optional[float] = None
    #: program name -> list of (variant, bound or None, report or None).
    results: Dict[str, List[Tuple[str, Optional[int], Optional[BugReport]]]] = field(
        default_factory=dict
    )

    def run_variant(
        self,
        program_name: str,
        variant: str,
        space_factory: SpaceFactory,
        state_caching: bool = False,
    ) -> Optional[BugReport]:
        """Find the minimal-preemption bug of one seeded variant."""
        strategy = IterativeContextBounding(
            max_bound=self.max_bound, state_caching=state_caching
        )
        limits = SearchLimits(
            stop_on_first_bug=True, max_seconds=self.max_seconds_per_variant
        )
        result = strategy.run(space_factory(), limits=limits)
        report = result.first_bug
        bound = report.preemptions if report else None
        self.results.setdefault(program_name, []).append((variant, bound, report))
        return report

    def table_rows(self, max_column: int = 3) -> List[List[object]]:
        """Rows in the shape of Table 2: bugs found per context bound."""
        rows: List[List[object]] = []
        for program, variants in self.results.items():
            counts = [0] * (max_column + 1)
            found = 0
            for _, bound, _ in variants:
                if bound is not None:
                    found += 1
                    if bound <= max_column:
                        counts[bound] += 1
            rows.append([program, found] + counts)
        return rows


def bug_bound_table(
    experiment: BugsByBoundExperiment, max_column: int = 3
) -> Tuple[List[str], List[List[object]]]:
    """(headers, rows) matching Table 2's layout."""
    headers = ["Program", "Bugs"] + [str(c) for c in range(max_column + 1)]
    return headers, experiment.table_rows(max_column)
