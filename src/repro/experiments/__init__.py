"""Experiment drivers regenerating the paper's tables and figures.

Every table and figure of the evaluation section has a driver here,
invoked by the corresponding benchmark in ``benchmarks/``:

* :mod:`repro.experiments.characteristics` -- Table 1 (benchmark
  characteristics: LOC, threads, max K/B/c);
* :mod:`repro.experiments.bugs` -- Table 2 (bugs exposed per total
  context bound);
* :mod:`repro.experiments.coverage` -- Figures 1 and 4 (cumulative
  state coverage per preemption bound) and Figures 2, 5 and 6
  (coverage growth per executions explored, per strategy);
* :mod:`repro.experiments.reporting` -- plain-text rendering of
  tables and log-scale curve plots.
"""

from .bugs import BugsByBoundExperiment, bug_bound_table
from .characteristics import characteristics_table
from .coverage import coverage_by_bound, coverage_growth
from .reporting import render_curves, render_table

__all__ = [
    "BugsByBoundExperiment",
    "bug_bound_table",
    "characteristics_table",
    "coverage_by_bound",
    "coverage_growth",
    "render_curves",
    "render_table",
]
