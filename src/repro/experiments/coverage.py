"""Coverage experiments (Figures 1, 2, 4, 5 and 6).

Two measurements, matching the paper's two coverage claims:

* **Coverage per preemption bound** (Figures 1 and 4): the cumulative
  fraction of all reachable states covered by executions with at most
  ``c`` preemptions.  One exhaustive ICB run yields the whole curve:
  ICB visits states in increasing bound order, so each state's
  first-visit bound is the minimum number of preemptions needed to
  reach it.

* **Coverage growth per executions explored** (Figures 2, 5 and 6):
  distinct states visited as a function of complete executions run,
  compared across strategies under a fixed execution budget.  This is
  the experiment showing ICB "achieves significantly better coverage
  at a faster rate" than dfs, random and depth-bounded search.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.transition import StateSpace
from ..search.strategy import SearchLimits, SearchResult, Strategy
from ..search.icb import IterativeContextBounding

SpaceFactory = Callable[[], StateSpace]


def coverage_by_bound(
    space_factory: SpaceFactory,
    max_bound: Optional[int] = None,
    limits: Optional[SearchLimits] = None,
    state_caching: bool = False,
) -> Tuple[List[Tuple[int, int, float]], SearchResult]:
    """Cumulative state coverage per preemption bound (Figures 1/4).

    Returns ``(curve, result)`` where each curve row is
    ``(bound, states with first-visit bound <= bound, fraction)``; the
    fraction is relative to all states the (ideally exhaustive) run
    visited.
    """
    strategy = IterativeContextBounding(
        max_bound=max_bound, state_caching=state_caching
    )
    result = strategy.run(space_factory(), limits=limits)
    histogram = result.context.states_by_bound()
    total = sum(histogram.values())
    curve: List[Tuple[int, int, float]] = []
    running = 0
    for bound in range(max(histogram) + 1 if histogram else 1):
        running += histogram.get(bound, 0)
        curve.append((bound, running, running / total if total else 1.0))
    return curve, result


def coverage_growth(
    space_factory: SpaceFactory,
    strategies: Dict[str, Strategy],
    max_executions: int,
    max_seconds: Optional[float] = None,
) -> Dict[str, SearchResult]:
    """Distinct states vs executions, per strategy (Figures 2/5/6).

    Each strategy runs on a fresh space under the same execution
    budget; the returned results carry the coverage history
    ``[(executions, distinct states), ...]`` that the figures plot.
    """
    results: Dict[str, SearchResult] = {}
    for label, strategy in strategies.items():
        limits = SearchLimits(
            max_executions=max_executions, max_seconds=max_seconds
        )
        results[label] = strategy.run(space_factory(), limits=limits)
    return results


def history_series(
    results: Dict[str, SearchResult], sample_every: int = 1
) -> Dict[str, List[Tuple[float, float]]]:
    """Convert search results into plottable (executions, states) series."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for label, result in results.items():
        history = result.history
        sampled = history[::sample_every] if sample_every > 1 else history
        if history and sampled and sampled[-1] != history[-1]:
            sampled = sampled + [history[-1]]
        series[label] = [(float(x), float(y)) for x, y in sampled]
    return series
