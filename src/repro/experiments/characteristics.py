"""The benchmark-characteristics experiment (Table 1).

For each benchmark Table 1 reports the program size (LOC), the number
of threads allocated by the test driver, and "the maximum values of K,
B, and c seen during our experiments", where for an execution K is the
total number of steps, B the number of blocking instructions and c the
number of preemptions.

We measure K/B/c maxima the same way: by sampling many complete
executions under random schedulers (random walks reach
high-preemption executions that bounded search deliberately avoids)
and taking maxima.  LOC counts the non-blank, non-comment source lines
of the benchmark's defining module.
"""

from __future__ import annotations

import inspect
import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..core.transition import StateSpace

SpaceFactory = Callable[[], StateSpace]


def count_loc(obj: object) -> int:
    """Non-blank, non-comment source lines of a module or callable."""
    source = inspect.getsource(obj)  # type: ignore[arg-type]
    count = 0
    in_doc = False
    for raw in source.splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_doc:
            if line.endswith('"""') or line.endswith("'''"):
                in_doc = False
            continue
        if line.startswith('"""') or line.startswith("'''"):
            quote = line[:3]
            rest = line[3:]
            if not (rest.endswith(quote) and len(rest) >= 3):
                in_doc = True
            continue
        if line.startswith("#"):
            continue
        count += 1
    return count


@dataclass(frozen=True)
class ProgramCharacteristics:
    """One row of Table 1."""

    name: str
    loc: int
    max_threads: int
    max_k: int
    max_b: int
    max_c: int

    def as_row(self) -> List[object]:
        return [self.name, self.loc, self.max_threads, self.max_k, self.max_b, self.max_c]


def measure_characteristics(
    name: str,
    space_factory: SpaceFactory,
    loc: int,
    executions: int = 200,
    seed: int = 1,
    max_steps_per_execution: int = 10_000,
) -> ProgramCharacteristics:
    """Sample random executions and record the Table 1 maxima."""
    space = space_factory()
    rng = random.Random(seed)
    max_threads = max_k = max_b = max_c = 0
    for _ in range(executions):
        state = space.initial_state()
        steps = 0
        while not space.is_terminal(state) and steps < max_steps_per_execution:
            enabled = space.enabled(state)
            state = space.execute(state, enabled[rng.randrange(len(enabled))])
            steps += 1
            threads = space.thread_count(state)
            if threads is not None:
                max_threads = max(max_threads, threads)
        k, b, c = space.execution_stats(state)
        max_k = max(max_k, k)
        max_b = max(max_b, b)
        max_c = max(max_c, c)
    return ProgramCharacteristics(
        name=name,
        loc=loc,
        max_threads=max_threads,
        max_k=max_k,
        max_b=max_b,
        max_c=max_c,
    )


def characteristics_table(
    entries: Sequence[ProgramCharacteristics],
) -> Tuple[List[str], List[List[object]]]:
    """(headers, rows) in Table 1's layout."""
    headers = ["Programs", "LOC", "Max Num Threads", "Max K", "Max B", "Max c"]
    return headers, [entry.as_row() for entry in entries]
